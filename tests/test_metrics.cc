/**
 * @file
 * Tests for the observability layer (src/observe/metrics,
 * src/observe/spec_profile) and its service integration:
 *
 *  - the metrics registry / sampler sample on the simulated cadence
 *    and never keep a drained event queue alive;
 *  - per-shard series merge deterministically (sumSeries) and the
 *    profile merges site-by-site (mergeFrom);
 *  - a ycsb_service-shaped run emits byte-identical metrics/profile
 *    JSON at --sim-threads 1 and 4 (the DESIGN.md section 12
 *    contract extended to the metrics sections);
 *  - with metrics off the result JSON carries no metrics/profile
 *    keys and every other byte matches a metrics-on run (sampling
 *    must observe, never perturb);
 *  - Json::parse round-trips the writer's output byte-identically
 *    (pm_top's input path);
 *  - quantileRank agrees between Histogram and the service quantile.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"
#include "common/stats.hh"
#include "observe/metrics.hh"
#include "observe/spec_profile.hh"
#include "service/service.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using observe::AbortCause;
using observe::MetricsRegistry;
using observe::MetricsSampler;
using observe::MetricsSeries;
using observe::SpecProfile;
using service::Service;
using service::ServiceConfig;
using service::ServiceResult;

namespace
{

/** Small but eventful: 4 shards, faults on three of them. */
ServiceConfig
metricsConfig()
{
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.clients = 8;
    cfg.keySpace = 512;
    cfg.interArrival = nsToTicks(32000);
    cfg.duration = nsToTicks(4000000);
    cfg.pmBytesPerShard = std::size_t{1} << 21;
    cfg.buckets = 128;
    cfg.logBytes = std::size_t{1} << 15;
    cfg.metrics = true;
    cfg.metricsInterval = nsToTicks(500000);
    cfg.faults.push_back({nsToTicks(1000000), 1,
                          service::ServiceFault::PowerCut, 0, 0});
    cfg.faults.push_back({nsToTicks(1600000), 2,
                          service::ServiceFault::MediaPoison, 0, 0});
    cfg.faults.push_back({nsToTicks(2200000), 0,
                          service::ServiceFault::MisspecStorm, 0, 0});
    return cfg;
}

} // namespace

TEST(Metrics, SamplerFiresOnCadenceAndTerminates)
{
    sim::EventQueue eq;
    int work = 0;
    MetricsRegistry reg;
    reg.addGauge("work", [&] { return static_cast<double>(work); });

    // 10 work events, 100ns apart; sampling every 250ns.
    for (int i = 1; i <= 10; ++i)
        eq.schedule(nsToTicks(100.0 * i), [&] { ++work; });
    MetricsSampler sampler(eq, reg, nsToTicks(250));
    sampler.start();
    eq.run();

    // Fires at 250/500/750/1000ns; the 1000ns firing sees the queue
    // drained and must not re-arm, so run() terminated.
    EXPECT_EQ(sampler.fired(), 4u);
    ASSERT_EQ(reg.numRows(), 4u);
    const MetricsSeries &s = reg.series();
    EXPECT_EQ(s.rows[0].at, nsToTicks(250));
    EXPECT_EQ(s.rows[0].values[0], 2.0);  // work at t=100,200
    EXPECT_EQ(s.rows[3].at, nsToTicks(1000));
    EXPECT_EQ(s.rows[3].values[0], 10.0);
}

TEST(Metrics, SumSeriesIsElementWiseWithRaggedRows)
{
    MetricsSeries a, b;
    a.columns = {"x", "y"};
    b.columns = {"x", "y"};
    a.rows.push_back({100, {1, 2}});
    a.rows.push_back({200, {3, 4}});
    b.rows.push_back({100, {10, 20}});
    // b has no second row (its domain drained early).
    const MetricsSeries sum = observe::sumSeries({a, b});
    ASSERT_EQ(sum.rows.size(), 2u);
    EXPECT_EQ(sum.rows[0].values[0], 11.0);
    EXPECT_EQ(sum.rows[0].values[1], 22.0);
    EXPECT_EQ(sum.rows[1].values[0], 3.0);
    EXPECT_EQ(sum.rows[1].values[1], 4.0);
    EXPECT_EQ(sum.rows[1].at, Tick{200});
}

TEST(Metrics, SeriesJsonKeepsIntegralsIntegral)
{
    MetricsSeries s;
    s.columns = {"n", "f"};
    s.rows.push_back({nsToTicks(1000), {42.0, 1.5}});
    const std::string text = s.toJson().dump();
    // 42 must serialize as an integer, 1.5 as a double, and the
    // timestamp lands in nanoseconds.
    EXPECT_NE(text.find("[1000,42,1.5]"), std::string::npos) << text;
}

TEST(SpecProfileTest, ExecutionsPartitionIntoCommitsAndAborts)
{
    SpecProfile p;
    const unsigned s = p.site("op");
    p.recordExecution(s);
    p.recordAbort(s, AbortCause::Misspec);
    p.recordExecution(s);
    p.recordCommit(s, 3, 2);
    const auto &site = p.siteInfo(s);
    EXPECT_EQ(site.executions, 2u);
    EXPECT_EQ(site.commits, 1u);
    EXPECT_EQ(site.abortsTotal(), 1u);
    EXPECT_EQ(site.executions, site.commits + site.abortsTotal());
    EXPECT_EQ(site.persists, 3u);
    EXPECT_EQ(site.dirtyBlocks, 2u);
}

TEST(SpecProfileTest, MergeFromMatchesSitesByName)
{
    SpecProfile a, b;
    const unsigned ra = a.site("read");
    a.site("update");
    const unsigned ub = b.site("update"); // different id order
    const unsigned rb = b.site("read");
    a.recordExecution(ra);
    a.recordCommit(ra, 1, 1);
    b.recordExecution(rb);
    b.recordAbort(rb, AbortCause::Media);
    b.recordExecution(ub);
    b.recordCommit(ub, 2, 2);

    a.mergeFrom(b);
    const auto &read = a.siteInfo(a.site("read"));
    EXPECT_EQ(read.executions, 2u);
    EXPECT_EQ(read.commits, 1u);
    EXPECT_EQ(read.abortsTotal(), 1u);
    const auto &update = a.siteInfo(a.site("update"));
    EXPECT_EQ(update.executions, 1u);
    EXPECT_EQ(update.persists, 2u);
}

TEST(SpecProfileTest, DisabledRecordsNothing)
{
    SpecProfile p;
    const unsigned s = p.site("op");
    p.setEnabled(false);
    p.recordExecution(s);
    p.recordCommit(s, 5, 5);
    EXPECT_EQ(p.siteInfo(s).executions, 0u);
    EXPECT_EQ(p.siteInfo(s).commits, 0u);
}

TEST(ServiceMetrics, ByteIdenticalAcrossSimThreads)
{
    ServiceConfig cfg = metricsConfig();
    cfg.simThreads = 1;
    Service st(cfg);
    const std::string stJson =
        st.run().toJson(cfg.duration).dump(2);

    cfg.simThreads = 4;
    Service mt(cfg);
    const std::string mtJson =
        mt.run().toJson(cfg.duration).dump(2);

    EXPECT_EQ(stJson, mtJson);
    // The metrics sections made it into the row.
    EXPECT_NE(stJson.find("\"metrics\""), std::string::npos);
    EXPECT_NE(stJson.find("pmemspec-profile-v1"), std::string::npos);
}

TEST(ServiceMetrics, SamplingObservesWithoutPerturbing)
{
    ServiceConfig on = metricsConfig();
    ServiceConfig off = metricsConfig();
    off.metrics = false;

    Service son(on);
    Json jon = son.run().toJson(on.duration);
    Service soff(off);
    const std::string offJson =
        soff.run().toJson(off.duration).dump(2);

    // Off: no metrics/profile keys at all.
    EXPECT_EQ(offJson.find("\"metrics\""), std::string::npos);
    EXPECT_EQ(offJson.find("\"profile\""), std::string::npos);

    // On minus its metrics sections must be bit-for-bit the off run:
    // the sampler reads simulated state, it never changes it.
    Json stripped = Json::object();
    for (const auto &[k, v] : jon.members()) {
        if (k != "metrics" && k != "profile")
            stripped.set(k, v);
    }
    EXPECT_EQ(stripped.dump(2), offJson);
}

TEST(ServiceMetrics, ProfileCountsCoverTheRun)
{
    ServiceConfig cfg = metricsConfig();
    Service svc(cfg);
    const ServiceResult res = svc.run();

    ASSERT_TRUE(res.metricsEnabled);
    ASSERT_EQ(res.shardSeries.size(), cfg.shards);
    EXPECT_FALSE(res.totalSeries.empty());
    // Shards share the sampling cadence, so the merged series has as
    // many rows as the longest-lived shard domain.
    std::size_t maxRows = 0;
    for (const auto &s : res.shardSeries)
        maxRows = std::max(maxRows, s.rows.size());
    EXPECT_EQ(res.totalSeries.rows.size(), maxRows);

    // Preload runs keySpace FASEs across the shards; every shard's
    // profile registers the same fixed site table.
    const SpecProfile &p = res.profile;
    ASSERT_EQ(p.numSites(), 6u);
    std::uint64_t preloads = p.siteInfo(0).commits;
    EXPECT_EQ(preloads, cfg.keySpace);
    // Every site's executions partition into commits + aborts.
    for (unsigned s = 0; s < p.numSites(); ++s) {
        const auto &site = p.siteInfo(s);
        EXPECT_EQ(site.executions, site.commits + site.abortsTotal())
            << "site " << site.name;
    }
    // The power cut and the storm left marks in the right buckets.
    std::uint64_t powerCuts = 0, misspecs = 0;
    for (unsigned s = 0; s < p.numSites(); ++s) {
        const auto &site = p.siteInfo(s);
        powerCuts += site.aborts[static_cast<std::size_t>(
            AbortCause::PowerCut)];
        misspecs += site.aborts[static_cast<std::size_t>(
            AbortCause::Misspec)];
    }
    EXPECT_GE(powerCuts, 1u);
    EXPECT_GE(misspecs, 1u);
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    ServiceConfig cfg = metricsConfig();
    cfg.duration = nsToTicks(2000000);
    cfg.faults.clear();
    Service svc(cfg);
    const Json doc = svc.run().toJson(cfg.duration);
    const std::string text = doc.dump(2);

    std::string err;
    const Json parsed = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    // parse() keeps unsigned integrals integral, so re-dumping
    // reproduces the writer's bytes exactly.
    EXPECT_EQ(parsed.dump(2), text);
}

TEST(JsonParse, RejectsMalformedInput)
{
    std::string err;
    EXPECT_TRUE(Json::parse("{\"a\": }", &err).isNull());
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_TRUE(Json::parse("[1, 2", &err).isNull());
    EXPECT_FALSE(err.empty());
    // Escapes and nested containers parse.
    const Json ok = Json::parse("{\"s\": \"a\\n\\u0041\", "
                                "\"v\": [1, -2.5, true, null]}", &err);
    ASSERT_FALSE(ok.isNull());
    EXPECT_EQ(ok.find("s")->str(), "a\nA");
    EXPECT_EQ(ok.find("v")->at(1).number(), -2.5);
}

TEST(QuantileRankTest, NearestRankEdges)
{
    EXPECT_EQ(quantileRank(0.5, 0), 0u);
    EXPECT_EQ(quantileRank(0.0, 10), 1u);
    EXPECT_EQ(quantileRank(1.0, 10), 10u);
    EXPECT_EQ(quantileRank(0.5, 10), 5u);
    EXPECT_EQ(quantileRank(0.99, 10), 10u);
    EXPECT_EQ(quantileRank(-1.0, 10), 1u);  // clamped
    EXPECT_EQ(quantileRank(2.0, 10), 10u);  // clamped
}

TEST(QuantileRankTest, HistogramAndServiceAgreeOnTheRank)
{
    // 1..100 in a unit-bucket histogram vs the sorted-vector rank:
    // both use quantileRank, so the p99 must be the same element.
    Histogram h(1.0, 101.0, 100);
    ServiceResult res;
    for (std::uint64_t v = 1; v <= 100; ++v) {
        h.sample(v);
        res.latencies.push_back(v);
    }
    const std::uint64_t rank = quantileRank(0.99, 100);
    EXPECT_EQ(rank, 99u);
    EXPECT_EQ(res.latencyQuantile(0.99), Tick{99});
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}
