/**
 * @file
 * Unit tests for the failure-atomic runtime: commit, the per-thread
 * misspeculation flag, lazy and eager recovery (Section 6.2), and
 * crash recovery across all threads.
 */

#include <gtest/gtest.h>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using runtime::FaseRuntime;
using runtime::LogGranularity;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 20};
    VirtualOs os;
    FaseRuntime rt;
    Addr data;

    explicit Harness(RecoveryPolicy policy = RecoveryPolicy::Lazy)
        : rt(pm, os, 2, policy), data(pm.alloc(128, 64))
    {
        for (Addr a = data; a < data + 128; a += 8)
            pm.writeU64(a, 1);
        pm.persistAll();
    }
};

} // namespace

TEST(FaseRuntime, CommitMakesWritesDurable)
{
    Harness h;
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 42);
    });
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.pm.inFlightCount(), 0u); // durability barrier ran
    std::uint64_t persisted;
    h.pm.read(h.data, &persisted, 8);
    EXPECT_EQ(persisted, 42u);
}

TEST(FaseRuntime, MisspecFlagAbortsAtCommitAndRetries)
{
    Harness h;
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 99);
        if (++runs == 1) {
            // Virtual power failure mid-FASE (lazy recovery: the
            // flag is only checked at the commit point).
            h.os.raiseMisspecInterrupt(h.data);
            EXPECT_TRUE(h.rt.misspecFlag(0));
        }
    });
    EXPECT_EQ(runs, 2); // aborted once, then committed
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.pm.readU64(h.data), 99u);
}

TEST(FaseRuntime, AbortRestoresIntermediateData)
{
    Harness h;
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        ++runs;
        if (runs == 1) {
            tx.writeU64(h.data, 1234);
            h.os.raiseMisspecInterrupt(h.data);
        } else {
            // The abort handler must have undone the first attempt.
            EXPECT_EQ(tx.readU64(h.data), 1u);
            tx.writeU64(h.data, 5678);
        }
    });
    EXPECT_EQ(h.pm.readU64(h.data), 5678u);
}

TEST(FaseRuntime, EagerRecoveryAbortsAtNextRuntimeEntry)
{
    Harness h(RecoveryPolicy::Eager);
    int runs = 0;
    bool reached_after = false;
    h.rt.runFase(0, [&](Transaction &tx) {
        ++runs;
        tx.writeU64(h.data, 7);
        if (runs == 1) {
            h.os.raiseMisspecInterrupt(h.data);
            // The next transactional access aborts eagerly; this
            // line must never be reached on the first attempt.
            tx.readU64(h.data);
            reached_after = true;
        }
    });
    EXPECT_EQ(runs, 2);
    EXPECT_FALSE(reached_after);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
}

TEST(FaseRuntime, SignalOnlyFlagsThreadsInsideFases)
{
    Harness h;
    int runs = 0;
    // Thread 1 is idle; a signal must not flag it.
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 3);
        if (++runs == 1) {
            h.os.raiseMisspecInterrupt(h.data);
            EXPECT_TRUE(h.rt.misspecFlag(0));
            EXPECT_FALSE(h.rt.misspecFlag(1));
        }
    });
    // One abort+retry for thread 0 happened.
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
}

TEST(FaseRuntime, FlagClearedAtFaseBegin)
{
    Harness h;
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 1);
        if (++runs == 1)
            h.os.raiseMisspecInterrupt(h.data);
    });
    // The retry cleared the flag and committed.
    EXPECT_FALSE(h.rt.misspecFlag(0));
    EXPECT_EQ(runs, 2);
}

TEST(FaseRuntime, ExceptionsWithFlagSetAreSuppressed)
{
    // Section 6.2.1: stale data can cause exceptions mid-FASE; the
    // handler suppresses them if misspeculation was flagged.
    Harness h;
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        ++runs;
        tx.writeU64(h.data, 11);
        if (runs == 1) {
            h.os.raiseMisspecInterrupt(h.data);
            throw std::runtime_error("segfault from stale pointer");
        }
    });
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
}

TEST(FaseRuntime, RealExceptionsPropagate)
{
    Harness h;
    EXPECT_THROW(h.rt.runFase(0,
                              [&](Transaction &) {
                                  throw std::runtime_error("real bug");
                              }),
                 std::runtime_error);
    EXPECT_FALSE(h.rt.inFase(0));
}

TEST(FaseRuntime, CrashDuringFaseRecoversOldState)
{
    Harness h;
    // Simulate power failure mid-FASE by crashing from inside.
    try {
        h.rt.runFase(0, [&](Transaction &tx) {
            tx.writeU64(h.data, 77);
            tx.writeU64(h.data + 8, 78);
            h.pm.crash(h.pm.inFlightCount()); // all writes persisted
            throw std::runtime_error("power failure");
        });
    } catch (const std::runtime_error &) {
    }
    h.rt.recoverAll();
    EXPECT_EQ(h.pm.readU64(h.data), 1u);
    EXPECT_EQ(h.pm.readU64(h.data + 8), 1u);
}

TEST(FaseRuntime, WordGranularityLogsEveryWrite)
{
    PersistentMemory pm(1 << 20);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy, 1 << 16,
                   LogGranularity::Word);
    Addr data = pm.alloc(64, 64);
    pm.persistAll();
    // Two writes to the same block: Word granularity logs both.
    std::size_t log_writes = 0;
    auto [log_base, log_len] = rt.logRegion(0);
    pm.setObserver([&](runtime::MemOp op, Addr a, std::uint32_t) {
        if (op == runtime::MemOp::Write && a >= log_base &&
            a < log_base + log_len)
            ++log_writes;
    });
    rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(data, 1);
        tx.writeU64(data + 8, 2);
    });
    pm.setObserver(nullptr);
    // Each logRange writes header+payload+count: > 1 write each.
    EXPECT_GE(log_writes, 6u);
}

TEST(FaseRuntime, BlockGranularityDeduplicates)
{
    Harness h;
    std::size_t log_appends = 0;
    auto [log_base, log_len] = h.rt.logRegion(0);
    (void)log_len;
    h.pm.setObserver([&](runtime::MemOp op, Addr a, std::uint32_t n) {
        // Count payload-sized log writes (the 64-byte old-data copy).
        if (op == runtime::MemOp::Write && a >= log_base && n == 64)
            ++log_appends;
    });
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 1);     // block 0: logged
        tx.writeU64(h.data + 8, 2); // block 0 again: deduplicated
        tx.writeU64(h.data + 64, 3); // block 1: logged
    });
    h.pm.setObserver(nullptr);
    EXPECT_EQ(log_appends, 2u);
}

TEST(FaseRuntime, NestedFasePanics)
{
    Harness h;
    EXPECT_DEATH(h.rt.runFase(0,
                              [&](Transaction &) {
                                  h.rt.runFase(0, [](Transaction &) {});
                              }),
                 "nested");
}

TEST(FaseRuntime, PerThreadLogsAreDisjoint)
{
    Harness h;
    auto [b0, l0] = h.rt.logRegion(0);
    auto [b1, l1] = h.rt.logRegion(1);
    EXPECT_TRUE(b0 + l0 <= b1 || b1 + l1 <= b0);
}

TEST(FaseRuntime, AbortBudgetTurnsLivelockIntoDiagnosedFailure)
{
    Harness h;
    h.rt.setAbortBudget(5);
    EXPECT_EQ(h.rt.abortBudget(), 5u);
    try {
        h.rt.runFase(0, [&](Transaction &tx) {
            tx.writeU64(h.data, 9);
            // A FASE that re-races into misspeculation on every
            // attempt would previously retry forever.
            h.os.raiseMisspecInterrupt(h.data);
        });
        FAIL() << "expected AbortBudgetExhausted";
    } catch (const runtime::AbortBudgetExhausted &e) {
        EXPECT_EQ(e.tid, 0u);
        EXPECT_EQ(e.aborts, 5u);
        EXPECT_EQ(e.faultAddr, h.data);
    }
    EXPECT_FALSE(h.rt.inFase(0));
    // The final attempt was rolled back before giving up...
    EXPECT_EQ(h.pm.readU64(h.data), 1u);
    // ...and the runtime stays usable.
    h.rt.runFase(0, [&](Transaction &tx) { tx.writeU64(h.data, 10); });
    EXPECT_EQ(h.pm.readU64(h.data), 10u);
}

TEST(FaseRuntime, AbortBudgetIsPerInvocation)
{
    Harness h;
    h.rt.setAbortBudget(2);
    for (int round = 0; round < 3; ++round) {
        int runs = 0;
        // One abort per invocation stays under a budget of two.
        h.rt.runFase(0, [&](Transaction &tx) {
            tx.writeU64(h.data, 40 + round);
            if (++runs == 1)
                h.os.raiseMisspecInterrupt(h.data);
        });
    }
    EXPECT_EQ(h.rt.fasesCommitted(), 3u);
    EXPECT_EQ(h.rt.fasesAborted(), 3u);
}

TEST(FaseRuntime, ZeroAbortBudgetIsFatal)
{
    Harness h;
    EXPECT_DEATH(h.rt.setAbortBudget(0), "budget");
}

TEST(FaseRuntime, EagerInterruptOnAnotherThreadsBlockAbortsAtNextPoll)
{
    // Thread 1 misspeculates while thread 0 is mid-FASE: the OS
    // broadcast must surface on thread 0 as an AbortException at its
    // next Transaction::poll(), then re-execute to commit.
    Harness h(RecoveryPolicy::Eager);
    int raises = 0;
    int outer_runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        ++outer_runs;
        tx.writeU64(h.data, 5);
        h.rt.runFase(1, [&](Transaction &tx1) {
            tx1.writeU64(h.data + 64, 6);
            if (++raises == 1)
                h.os.raiseMisspecInterrupt(h.data + 64);
            tx1.writeU64(h.data + 72, 7);
        });
        // First pass: thread 0 was flagged by the broadcast above and
        // aborts right here, at its next runtime entry point.
        tx.writeU64(h.data + 8, 8);
    });
    EXPECT_EQ(outer_runs, 2);
    // One abort on each thread; thread 1 committed on both outer
    // passes, thread 0 once.
    EXPECT_EQ(h.rt.fasesAborted(), 2u);
    EXPECT_EQ(h.rt.fasesCommitted(), 3u);
    EXPECT_EQ(h.pm.readU64(h.data), 5u);
    EXPECT_EQ(h.pm.readU64(h.data + 8), 8u);
    EXPECT_EQ(h.pm.readU64(h.data + 64), 6u);
    EXPECT_EQ(h.pm.readU64(h.data + 72), 7u);
}
