/**
 * @file
 * Unit tests for the set-associative cache tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace pmemspec;
using mem::SetAssocCache;

namespace
{

Addr
blk(std::uint64_t n)
{
    return n * blockBytes;
}

} // namespace

TEST(Cache, MissOnEmpty)
{
    SetAssocCache c("c", 4096, 4);
    EXPECT_FALSE(c.access(blk(1)));
    EXPECT_EQ(c.misses.value(), 1u);
    EXPECT_EQ(c.hits.value(), 0u);
}

TEST(Cache, HitAfterInsert)
{
    SetAssocCache c("c", 4096, 4);
    c.insert(blk(1), false);
    EXPECT_TRUE(c.access(blk(1)));
    EXPECT_EQ(c.hits.value(), 1u);
}

TEST(Cache, GeometryIsDerivedFromSizeAndWays)
{
    SetAssocCache c("c", 64 * 1024, 4);
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.numWays(), 4u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 4 blocks * 2 ways = 2 sets; same-set blocks differ by numSets.
    SetAssocCache c("c", 4 * blockBytes, 2);
    const auto sets = c.numSets();
    // Fill set 0 beyond capacity.
    c.insert(blk(0 * sets), false);
    c.insert(blk(1 * sets), false);
    c.access(blk(0 * sets)); // make block 0 MRU
    auto ev = c.insert(blk(2 * sets), false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->blockAddr, blk(1 * sets)); // LRU evicted
    EXPECT_TRUE(c.contains(blk(0 * sets)));
    EXPECT_TRUE(c.contains(blk(2 * sets)));
}

TEST(Cache, DirtyEvictionReported)
{
    SetAssocCache c("c", 2 * blockBytes, 1);
    const auto sets = c.numSets();
    c.insert(blk(0), true);
    auto ev = c.insert(blk(sets), false); // same set, evicts dirty
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(c.dirtyEvictions.value(), 1u);
}

TEST(Cache, CleanEvictionReported)
{
    SetAssocCache c("c", 2 * blockBytes, 1);
    const auto sets = c.numSets();
    c.insert(blk(0), false);
    auto ev = c.insert(blk(sets), false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_FALSE(ev->dirty);
}

TEST(Cache, ReinsertMergesDirtyBit)
{
    SetAssocCache c("c", 4096, 4);
    c.insert(blk(3), false);
    auto ev = c.insert(blk(3), true);
    EXPECT_FALSE(ev.has_value());
    EXPECT_TRUE(c.isDirty(blk(3)));
    // Dirty is sticky: a clean re-insert does not clean it.
    c.insert(blk(3), false);
    EXPECT_TRUE(c.isDirty(blk(3)));
}

TEST(Cache, MarkDirtyAndClean)
{
    SetAssocCache c("c", 4096, 4);
    c.insert(blk(5), false);
    EXPECT_FALSE(c.isDirty(blk(5)));
    c.markDirty(blk(5));
    EXPECT_TRUE(c.isDirty(blk(5)));
    c.markClean(blk(5));
    EXPECT_FALSE(c.isDirty(blk(5)));
}

TEST(Cache, MarkCleanOnAbsentBlockIsANoop)
{
    SetAssocCache c("c", 4096, 4);
    c.markClean(blk(9)); // must not crash
}

TEST(Cache, InvalidateReturnsDirtyBit)
{
    SetAssocCache c("c", 4096, 4);
    c.insert(blk(1), true);
    auto d = c.invalidate(blk(1));
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(*d);
    EXPECT_FALSE(c.contains(blk(1)));
    EXPECT_FALSE(c.invalidate(blk(1)).has_value());
}

TEST(Cache, PopulationTracksValidBlocks)
{
    SetAssocCache c("c", 4096, 4);
    EXPECT_EQ(c.population(), 0u);
    c.insert(blk(1), false);
    c.insert(blk(2), false);
    EXPECT_EQ(c.population(), 2u);
    c.invalidate(blk(1));
    EXPECT_EQ(c.population(), 1u);
}

TEST(Cache, AccessUpdatesLruState)
{
    SetAssocCache c("c", 2 * blockBytes, 2);
    const auto sets = c.numSets();
    c.insert(blk(0), false);
    c.insert(blk(sets), false);
    // Touch block 0 so block sets is LRU.
    EXPECT_TRUE(c.access(blk(0)));
    auto ev = c.insert(blk(2 * sets), false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->blockAddr, blk(sets));
}

TEST(Cache, FullyAssociativeSingleSet)
{
    SetAssocCache c("c", 4 * blockBytes, 4);
    EXPECT_EQ(c.numSets(), 1u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_FALSE(c.insert(blk(i), false).has_value());
    EXPECT_TRUE(c.insert(blk(4), false).has_value());
}

class CacheSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheSweep, CapacityIsRespectedAcrossAssociativities)
{
    const unsigned ways = GetParam();
    SetAssocCache c("c", 64 * blockBytes, ways);
    // Insert 128 distinct blocks; population can never exceed 64.
    for (std::uint64_t i = 0; i < 128; ++i)
        c.insert(blk(i), i % 2 == 0);
    EXPECT_LE(c.population(), 64u);
    EXPECT_EQ(c.evictions.value(), 128u - c.population());
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
