/**
 * @file
 * Tests for the Section 7 extension: multiple PM controllers with an
 * address-interleaved map. With the ordered NoC the per-core persist
 * order is preserved across controllers; with an unordered NoC the
 * oracle counter exposes the order violations the hardware cannot
 * detect -- exactly the limitation the paper states.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using cpu::Machine;
using cpu::MachineConfig;
using cpu::Trace;
using cpu::TraceOp;
using mem::MemConfig;
using mem::MemorySystem;
using persistency::Design;
using sim::EventQueue;

namespace
{

MachineConfig
multiPmcConfig(unsigned pmcs, bool ordered)
{
    MachineConfig cfg;
    cfg.design = Design::PmemSpec;
    cfg.mem.numCores = 2;
    cfg.mem.numPmcs = pmcs;
    cfg.mem.orderedNoc = ordered;
    return cfg;
}

/** Stores alternating across the controller interleaving. The
 *  blocks are warmed first so the stores drain back-to-back (cold
 *  write-allocate misses would space the sends by a full PM round
 *  trip and mask any lane skew). */
Trace
interleavedStores(unsigned n)
{
    Trace t;
    for (unsigned i = 0; i < n; ++i)
        t.push_back({TraceOp::Load,
                     0x10000 + static_cast<Addr>(i) * blockBytes});
    t.push_back({TraceOp::Compute, 4000}); // let the fills land
    t.push_back({TraceOp::FaseBegin, 0});
    for (unsigned i = 0; i < n; ++i)
        t.push_back({TraceOp::Store,
                     0x10000 + static_cast<Addr>(i) * blockBytes});
    t.push_back({TraceOp::SpecBarrier, 0});
    t.push_back({TraceOp::FaseEnd, 0});
    return t;
}

} // namespace

TEST(MultiPmc, SinglePmcIsTheDefault)
{
    Machine m(multiPmcConfig(1, true));
    EXPECT_EQ(m.memory().numPmcs(), 1u);
}

TEST(MultiPmc, BlocksInterleaveAcrossControllers)
{
    EventQueue eq;
    StatGroup stats("t");
    MemConfig cfg;
    cfg.numCores = 1;
    cfg.numPmcs = 4;
    MemorySystem mem(eq, &stats, cfg, Design::PmemSpec);
    EXPECT_EQ(mem.pmcIndexFor(0 * blockBytes), 0u);
    EXPECT_EQ(mem.pmcIndexFor(1 * blockBytes), 1u);
    EXPECT_EQ(mem.pmcIndexFor(5 * blockBytes), 1u);
    EXPECT_EQ(&mem.pmcFor(2 * blockBytes), &mem.pmc(2));
}

TEST(MultiPmc, ReadsRouteToTheOwningController)
{
    EventQueue eq;
    StatGroup stats("t");
    MemConfig cfg;
    cfg.numCores = 1;
    cfg.numPmcs = 2;
    MemorySystem mem(eq, &stats, cfg, Design::IntelX86);
    mem.load(0, 0 * blockBytes, [] {});
    mem.load(0, 1 * blockBytes, [] {});
    eq.run();
    EXPECT_EQ(mem.pmc(0).reads.value(), 1u);
    EXPECT_EQ(mem.pmc(1).reads.value(), 1u);
}

TEST(MultiPmc, OrderedNocHasNoReorderHazards)
{
    Machine m(multiPmcConfig(4, true));
    std::vector<Trace> traces{interleavedStores(64),
                              interleavedStores(64)};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.fases, 2u);
    EXPECT_EQ(r.crossPmcReorderHazards, 0u);
}

TEST(MultiPmc, UnorderedNocExposesReorderHazards)
{
    // Lanes to different controllers have different latencies; a
    // core's back-to-back stores to different controllers arrive out
    // of store order -- and the hardware cannot see it (Section 7).
    Machine m(multiPmcConfig(4, false));
    std::vector<Trace> traces{interleavedStores(64),
                              interleavedStores(64)};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.fases, 2u);
    EXPECT_GT(r.crossPmcReorderHazards, 0u);
    // The hardware itself saw nothing: no misspeculation detected.
    EXPECT_EQ(r.loadMisspecs, 0u);
    EXPECT_EQ(r.storeMisspecs, 0u);
}

TEST(MultiPmc, SpecBarrierDrainsEveryLane)
{
    Machine m(multiPmcConfig(4, false));
    std::vector<Trace> traces{interleavedStores(16), Trace{}};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.fases, 1u);
    // All lanes empty at the end: every persist was accepted.
    for (unsigned lane = 0; lane < 4; ++lane)
        EXPECT_TRUE(m.memory().path(0, lane).empty());
}

TEST(MultiPmc, PersistsLandOnTheRightController)
{
    Machine m(multiPmcConfig(2, true));
    std::vector<Trace> traces{interleavedStores(32), Trace{}};
    m.setTraces(std::move(traces));
    m.run();
    // 32 alternating blocks: 16 per controller (modulo coalescing).
    EXPECT_GT(m.memory().pmc(0).persistsAccepted.value(), 0u);
    EXPECT_GT(m.memory().pmc(1).persistsAccepted.value(), 0u);
}

class MultiPmcSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MultiPmcSweep, OrderedExtensionStaysMisspeculationFree)
{
    Machine m(multiPmcConfig(GetParam(), true));
    std::vector<Trace> traces{interleavedStores(48),
                              interleavedStores(48)};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.crossPmcReorderHazards, 0u);
    EXPECT_EQ(r.loadMisspecs, 0u);
    EXPECT_EQ(r.storeMisspecs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Controllers, MultiPmcSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));
