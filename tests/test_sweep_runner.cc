/**
 * @file
 * The sweep determinism oracle: a parallel sweep must be
 * indistinguishable from a serial one. Byte-identical serialized
 * results, submission-order preservation, error isolation, and jobs
 * clamping. This test is also the payload of the ThreadSanitizer CI
 * job — any shared mutable state reachable from a run shows up here
 * as a race.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "core/sweep.hh"

using namespace pmemspec;
using namespace pmemspec::core;
using persistency::Design;
using workloads::BenchId;

namespace
{

std::vector<SweepPoint>
tinyMatrix()
{
    std::vector<SweepPoint> points;
    for (auto b : {BenchId::ArraySwaps, BenchId::Queue,
                   BenchId::Hashmap}) {
        for (Design d : {Design::IntelX86, Design::PmemSpec}) {
            SweepPoint p;
            p.id = std::string(workloads::benchName(b)) + "/" +
                   persistency::designName(d);
            p.cfg.withBench(b)
                .withDesign(d)
                .withMachine(defaultMachineConfig(2))
                .withThreads(2)
                .withOps(8)
                .withSeed(3);
            points.push_back(std::move(p));
        }
    }
    return points;
}

std::string
serialize(const std::vector<SweepResult> &results)
{
    ResultSink sink("determinism-oracle");
    sink.addPoints(results);
    return sink.toJson().dump(2);
}

} // namespace

TEST(SweepRunner, JobsClamping)
{
    EXPECT_GE(SweepRunner(0).jobs(), 1u); // hw_concurrency, >= 1
    EXPECT_EQ(SweepRunner(1).jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
    EXPECT_EQ(SweepRunner(100000).jobs(), SweepRunner::maxJobs);
}

TEST(SweepRunner, ParallelMatchesSerialByteForByte)
{
    const auto points = tinyMatrix();
    const auto serial = SweepRunner(1).run(points);
    const auto parallel = SweepRunner(4).run(points);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].id, parallel[i].id);
        EXPECT_EQ(serial[i].result.run.simTicks,
                  parallel[i].result.run.simTicks)
            << serial[i].id;
        EXPECT_EQ(serial[i].result.run.fases,
                  parallel[i].result.run.fases);
    }
    // The full serialized artifacts (results + stats snapshots) are
    // byte-identical — the --jobs N invariant of every bench binary.
    EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    // Task i sleeps inversely to its index, so completion order is
    // roughly the reverse of submission order under parallelism.
    SweepRunner runner(4);
    const std::size_t n = 8;
    std::vector<int> filled(n, -1);
    runner.forEach(n, [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds((n - i) * 3));
        filled[i] = static_cast<int>(i);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(filled[i], static_cast<int>(i));

    const auto points = tinyMatrix();
    const auto results = runner.run(points);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(results[i].id, points[i].id);
}

TEST(SweepRunner, ExceptionDoesNotPoisonThePool)
{
    SweepRunner runner(4);
    const std::size_t n = 16;
    std::atomic<unsigned> ran{0};
    std::vector<std::string> errors;
    runner.forEach(n,
                   [&](std::size_t i) {
                       if (i == 3)
                           throw std::runtime_error("point 3 is bad");
                       ++ran;
                   },
                   &errors);
    ASSERT_EQ(errors.size(), n);
    EXPECT_EQ(errors[3], "point 3 is bad");
    for (std::size_t i = 0; i < n; ++i)
        if (i != 3)
            EXPECT_TRUE(errors[i].empty()) << i;
    EXPECT_EQ(ran.load(), n - 1);
}

TEST(SweepRunner, ForEachRethrowsFirstErrorWithoutErrorsVector)
{
    SweepRunner runner(2);
    std::atomic<unsigned> ran{0};
    try {
        runner.forEach(6, [&](std::size_t i) {
            if (i == 1 || i == 4)
                throw std::runtime_error("boom " +
                                         std::to_string(i));
            ++ran;
        });
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        // The lowest failing index wins deterministically, and the
        // remaining tasks still ran before the rethrow.
        EXPECT_STREQ(e.what(), "sweep point 1: boom 1");
    }
    EXPECT_EQ(ran.load(), 4u);
}

TEST(SweepRunner, FailedExperimentPointIsCapturedNotFatal)
{
    // An id-tagged point whose run throws must come back as a
    // SweepResult error while its siblings complete.
    auto points = tinyMatrix();
    const auto results = SweepRunner(2).run(points);
    for (const auto &r : results)
        EXPECT_TRUE(r.ok()) << r.id << ": " << r.error;
}

TEST(SweepRunner, NormalizedSweepMatchesSerialRunNormalized)
{
    const auto machine = defaultMachineConfig(2);
    workloads::WorkloadParams p;
    p.numThreads = 2;
    p.opsPerThread = 8;

    SweepRunner runner(4);
    const std::vector<BenchId> benches = {BenchId::ArraySwaps,
                                          BenchId::Queue};
    const auto rows =
        runNormalizedSweep(benches, machine, p, runner);
    ASSERT_EQ(rows.size(), 2u);
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const auto serial = runNormalized(benches[i], machine, p);
        for (auto d : serial.designs) {
            EXPECT_DOUBLE_EQ(rows[i].normalized.at(d),
                             serial.normalized.at(d))
                << workloads::benchName(benches[i]);
        }
    }
}

TEST(ResultSink, JsonEnvelopeGoldenKeys)
{
    const auto points = tinyMatrix();
    const auto results = SweepRunner(2).run(points);

    ResultSink sink("fig_test");
    sink.setMeta("ops_per_thread", Json(std::uint64_t{8}));
    sink.addPoints(results);
    Json row = Json::object();
    row.set("benchmark", Json("ArraySwaps"));
    row.set("PMEM-Spec", Json(1.25));
    sink.addRow("normalized", std::move(row));

    const Json root = sink.toJson();
    ASSERT_NE(root.find("schema"), nullptr);
    EXPECT_EQ(root.find("schema")->str(), "pmemspec-bench-v1");
    EXPECT_EQ(root.find("figure")->str(), "fig_test");
    ASSERT_NE(root.find("meta"), nullptr);
    EXPECT_EQ(root.find("meta")->find("ops_per_thread")->uintValue(),
              8u);

    const Json *pts = root.find("points");
    ASSERT_NE(pts, nullptr);
    ASSERT_EQ(pts->size(), points.size());
    const Json &p0 = pts->at(0);
    for (const char *key :
         {"id", "bench", "design", "cores", "ops_per_thread", "seed",
          "throughput", "sim_ticks", "fases", "instructions",
          "load_misspecs", "store_misspecs", "aborts",
          "spec_buf_full_pauses", "cross_pmc_reorder_hazards",
          "stats"}) {
        EXPECT_NE(p0.find(key), nullptr) << key;
    }
    EXPECT_GT(p0.find("stats")->size(), 0u);

    const Json *tables = root.find("tables");
    ASSERT_NE(tables, nullptr);
    const Json *norm = tables->find("normalized");
    ASSERT_NE(norm, nullptr);
    ASSERT_EQ(norm->size(), 1u);
    EXPECT_EQ(norm->at(0).find("benchmark")->str(), "ArraySwaps");

    // Round-trip stability: serializing the same results twice gives
    // the same bytes.
    EXPECT_EQ(sink.toJson().dump(2), sink.toJson().dump(2));
}

TEST(ResultSink, WriteFileAndEmptyPathNoop)
{
    ResultSink sink("smoke");
    EXPECT_TRUE(sink.writeFile(""));

    const std::string path =
        ::testing::TempDir() + "/pmemspec_sink_test.json";
    ASSERT_TRUE(sink.writeFile(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"schema\": \"pmemspec-bench-v1\""),
              std::string::npos);
    EXPECT_NE(content.find("\"figure\": \"smoke\""),
              std::string::npos);
    std::remove(path.c_str());
}
