/**
 * @file
 * Unit tests for the functional PM model: allocation, the two images,
 * in-order persist semantics, crash prefixes, and the observer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "runtime/persistent_memory.hh"

using namespace pmemspec;
using runtime::MemOp;
using runtime::PersistentMemory;

TEST(PersistentMemory, AllocRespectsAlignment)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    Addr b = pm.alloc(10, 64);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
}

TEST(PersistentMemory, AddressZeroIsNeverAllocated)
{
    PersistentMemory pm(1 << 20);
    EXPECT_NE(pm.alloc(8), 0u);
}

TEST(PersistentMemory, WriteReadRoundTrip)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(16);
    pm.writeU64(a, 0xdeadbeefULL);
    EXPECT_EQ(pm.readU64(a), 0xdeadbeefULL);
    pm.writeU32(a + 8, 77);
    EXPECT_EQ(pm.readU32(a + 8), 77u);
}

TEST(PersistentMemory, WritesAreVolatileUntilPersisted)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(8);
    pm.writeU64(a, 42);
    std::uint64_t persisted;
    std::memcpy(&persisted, pm.persistedImage() + a, 8);
    EXPECT_EQ(persisted, 0u);
    pm.persistAll();
    std::memcpy(&persisted, pm.persistedImage() + a, 8);
    EXPECT_EQ(persisted, 42u);
    EXPECT_EQ(pm.inFlightCount(), 0u);
}

TEST(PersistentMemory, CrashKeepsAnInOrderPrefix)
{
    // Strict persistency: a crash applies the first k in-flight
    // stores in store order and drops the rest.
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(8);
    Addr b = pm.alloc(8);
    Addr c = pm.alloc(8);
    pm.writeU64(a, 1);
    pm.writeU64(b, 2);
    pm.writeU64(c, 3);
    pm.crash(2);
    EXPECT_EQ(pm.readU64(a), 1u);
    EXPECT_EQ(pm.readU64(b), 2u);
    EXPECT_EQ(pm.readU64(c), 0u); // lost
}

TEST(PersistentMemory, CrashZeroLosesEverythingUnpersisted)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(8);
    pm.writeU64(a, 7);
    pm.persistAll();
    pm.writeU64(a, 9);
    pm.crash(0);
    EXPECT_EQ(pm.readU64(a), 7u);
}

TEST(PersistentMemory, CrashRebootsVolatileFromPersisted)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(8);
    pm.writeU64(a, 5);
    pm.crash(0);
    // The volatile image equals the persisted one after reboot.
    EXPECT_EQ(std::memcmp(pm.volatileImage(), pm.persistedImage(),
                          pm.size()),
              0);
}

TEST(PersistentMemory, LaterWriteToSameAddressWins)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(8);
    pm.writeU64(a, 1);
    pm.writeU64(a, 2);
    pm.crash(2);
    EXPECT_EQ(pm.readU64(a), 2u);
}

TEST(PersistentMemory, PrefixReplayPreservesOrderAcrossOverwrites)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(8);
    pm.writeU64(a, 1);
    pm.writeU64(a, 2);
    pm.crash(1); // only the first write persisted
    EXPECT_EQ(pm.readU64(a), 1u);
}

TEST(PersistentMemory, ObserverSeesAllTraffic)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(64, 64);
    std::vector<std::tuple<MemOp, Addr, std::uint32_t>> log;
    pm.setObserver([&](MemOp op, Addr addr, std::uint32_t n) {
        log.emplace_back(op, addr, n);
    });
    pm.writeU64(a, 1);
    pm.readU64(a);
    pm.readU64Dep(a + 8);
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(std::get<0>(log[0]), MemOp::Write);
    EXPECT_EQ(std::get<0>(log[1]), MemOp::Read);
    EXPECT_EQ(std::get<0>(log[2]), MemOp::ReadDep);
    EXPECT_EQ(std::get<1>(log[2]), a + 8);
    EXPECT_EQ(std::get<2>(log[0]), 8u);
    pm.setObserver(nullptr);
    pm.writeU64(a, 2);
    EXPECT_EQ(log.size(), 3u);
}

TEST(PersistentMemory, OutOfRangeAccessPanics)
{
    PersistentMemory pm(4096);
    EXPECT_DEATH(pm.readU64(4090), "out of range");
    EXPECT_DEATH(pm.writeU64(0, 1), "null");
}

TEST(PersistentMemory, ArenaExhaustionIsFatal)
{
    PersistentMemory pm(4096);
    EXPECT_DEATH(pm.alloc(1 << 20), "exhausted");
}

TEST(PersistentMemory, InFlightCountTracksStores)
{
    PersistentMemory pm(1 << 20);
    Addr a = pm.alloc(64);
    EXPECT_EQ(pm.inFlightCount(), 0u);
    pm.writeU64(a, 1);
    pm.writeU64(a + 8, 2);
    EXPECT_EQ(pm.inFlightCount(), 2u);
    pm.persistAll();
    EXPECT_EQ(pm.inFlightCount(), 0u);
}

TEST(PersistentMemory, SnapshotRestoreRoundTrips)
{
    PersistentMemory pm(1 << 16);
    Addr a = pm.alloc(16, 64);
    pm.writeU64(a, 1);
    pm.persistAll();
    pm.writeU64(a, 2); // in flight at snapshot time
    const auto snap = pm.snapshot();

    pm.writeU64(a, 3);
    pm.persistAll();
    Addr later = pm.alloc(8, 8);
    EXPECT_GT(later, a);

    pm.restore(snap);
    EXPECT_EQ(pm.readU64(a), 2u);       // volatile image restored
    EXPECT_EQ(pm.inFlightCount(), 1u);  // pending persist restored
    pm.crash(0);                        // the pending write is lost
    EXPECT_EQ(pm.readU64(a), 1u);
    // The arena cursor was restored too: alloc hands out the same
    // address the discarded timeline used.
    EXPECT_EQ(pm.alloc(8, 8), later);
}

TEST(PersistentMemory, RestoreRewindsCrashSemantics)
{
    PersistentMemory pm(1 << 16);
    Addr a = pm.alloc(32, 64);
    pm.writeU64(a, 10);
    pm.persistAll();
    const auto snap = pm.snapshot();

    // Timeline 1: both writes durable.
    pm.writeU64(a, 11);
    pm.writeU64(a + 8, 12);
    pm.crash(2);
    EXPECT_EQ(pm.readU64(a), 11u);
    EXPECT_EQ(pm.readU64(a + 8), 12u);

    // Timeline 2 from the same snapshot: only the first survives.
    pm.restore(snap);
    pm.writeU64(a, 11);
    pm.writeU64(a + 8, 12);
    pm.crash(1);
    EXPECT_EQ(pm.readU64(a), 11u);
    EXPECT_EQ(pm.readU64(a + 8), 0u);
}

TEST(PersistentMemory, RestoreOfMismatchedSnapshotPanics)
{
    PersistentMemory small(1 << 12);
    PersistentMemory big(1 << 16);
    const auto snap = small.snapshot();
    EXPECT_DEATH(big.restore(snap), "snapshot");
}
