/**
 * @file
 * Unit tests for the PM controller: device timing, write coalescing,
 * design-specific writeback handling, the HOPS bloom filter path, and
 * the spec-ID store-order check.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/pm_controller.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using mem::MemConfig;
using mem::PmController;
using persistency::Design;
using sim::EventQueue;

namespace
{

struct Harness
{
    EventQueue eq;
    StatGroup stats{"test"};
    MemConfig cfg;
    PmController pmc;

    explicit Harness(Design d, MemConfig c = MemConfig{})
        : cfg(c), pmc(eq, &stats, cfg, d)
    {
    }
};

} // namespace

TEST(PmController, ReadTakesDeviceLatency)
{
    Harness h(Design::IntelX86);
    Tick done = 0;
    h.pmc.read(0x1000, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(done, nsToTicks(175));
    EXPECT_EQ(h.pmc.reads.value(), 1u);
}

TEST(PmController, SameBankReadsSerialise)
{
    Harness h(Design::IntelX86);
    std::vector<Tick> done;
    // Same block -> same bank.
    h.pmc.read(0x1000, [&] { done.push_back(h.eq.now()); });
    h.pmc.read(0x1000, [&] { done.push_back(h.eq.now()); });
    h.eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], nsToTicks(175));
    EXPECT_EQ(done[1], nsToTicks(350));
}

TEST(PmController, DifferentBanksOverlap)
{
    Harness h(Design::IntelX86);
    std::vector<Tick> done;
    h.pmc.read(0, [&] { done.push_back(h.eq.now()); });
    h.pmc.read(64, [&] { done.push_back(h.eq.now()); }); // next bank
    h.eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], nsToTicks(175));
    EXPECT_EQ(done[1], nsToTicks(175));
}

TEST(PmController, IntelWritebackEntersWriteQueue)
{
    Harness h(Design::IntelX86);
    bool accepted = false;
    h.pmc.writeBack(0x1000, [&] { accepted = true; });
    EXPECT_TRUE(accepted); // ADR: durable at acceptance
    EXPECT_EQ(h.pmc.writes.value(), 1u);
    h.eq.run();
    EXPECT_EQ(h.pmc.writeQueueOccupancy(), 0u);
}

TEST(PmController, BufferedDesignsDropWritebacks)
{
    for (Design d : {Design::HOPS, Design::DPO}) {
        Harness h(d);
        bool accepted = false;
        h.pmc.writeBack(0x1000, [&] { accepted = true; });
        EXPECT_TRUE(accepted);
        EXPECT_EQ(h.pmc.droppedWritebacks.value(), 1u);
        EXPECT_EQ(h.pmc.writes.value(), 0u);
    }
}

TEST(PmController, PmemSpecWritebackFeedsSpecBuffer)
{
    Harness h(Design::PmemSpec);
    h.pmc.writeBack(0x1000, [] {});
    EXPECT_EQ(h.pmc.droppedWritebacks.value(), 1u);
    EXPECT_EQ(h.pmc.specBuffer().occupancy(), 1u);
    EXPECT_EQ(h.pmc.specBuffer().stateOf(0x1000),
              mem::SpecState::Evict);
}

TEST(PmController, AcceptPersistWritesAndCoalesces)
{
    Harness h(Design::PmemSpec);
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0x1000, std::nullopt));
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0x1000, std::nullopt));
    EXPECT_EQ(h.pmc.writes.value(), 1u);
    EXPECT_EQ(h.pmc.writeCoalesces.value(), 1u);
    EXPECT_EQ(h.pmc.persistsAccepted.value(), 2u);
}

TEST(PmController, WriteQueueFullRefusesPersists)
{
    MemConfig cfg;
    cfg.pmcWriteQueue = 2;
    cfg.pmBanks = 1;
    Harness h(Design::PmemSpec, cfg);
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0 * 64, std::nullopt));
    EXPECT_TRUE(h.pmc.acceptPersist(0, 1 * 64, std::nullopt));
    EXPECT_FALSE(h.pmc.acceptPersist(0, 2 * 64, std::nullopt));
    EXPECT_EQ(h.pmc.persistsRefused.value(), 1u);
    h.eq.run(); // queue drains
    EXPECT_TRUE(h.pmc.acceptPersist(0, 2 * 64, std::nullopt));
}

TEST(PmController, LoadMisspecEndToEnd)
{
    // WriteBack (dropped LLC eviction) -> Read from PM -> Persist
    // arrival: the full stale-read pattern through the PMC.
    Harness h(Design::PmemSpec);
    int misspecs = 0;
    h.pmc.specBuffer().setMisspecCallback(
        [&](Addr, mem::MisspecKind k) {
            if (k == mem::MisspecKind::LoadStale)
                ++misspecs;
        });
    h.pmc.writeBack(0x1000, [] {});
    h.pmc.read(0x1000, [] {});
    h.pmc.acceptPersist(0, 0x1000, std::nullopt);
    EXPECT_EQ(misspecs, 1);
    h.eq.run();
}

TEST(PmController, StoreOrderViolationDetected)
{
    Harness h(Design::PmemSpec);
    int store_misspecs = 0;
    h.pmc.specBuffer().setMisspecCallback(
        [&](Addr, mem::MisspecKind k) {
            if (k == mem::MisspecKind::StoreOrder)
                ++store_misspecs;
        });
    // Core 1's store (spec-id 5) persists, then core 0's earlier
    // store (spec-id 3) arrives late: inter-thread WAW inversion.
    EXPECT_TRUE(h.pmc.acceptPersist(1, 0x1000, SpecId{5}));
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0x1000, SpecId{3}));
    EXPECT_EQ(store_misspecs, 1);
    h.eq.run();
}

TEST(PmController, InOrderSpecIdsAreBenign)
{
    Harness h(Design::PmemSpec);
    int misspecs = 0;
    h.pmc.specBuffer().setMisspecCallback(
        [&](Addr, mem::MisspecKind) { ++misspecs; });
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0x1000, SpecId{3}));
    EXPECT_TRUE(h.pmc.acceptPersist(1, 0x1000, SpecId{5}));
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0x1000, SpecId{5}));
    EXPECT_EQ(misspecs, 0);
    h.eq.run();
}

TEST(PmController, SpecIdCheckExpiresWithWindow)
{
    Harness h(Design::PmemSpec);
    int misspecs = 0;
    h.pmc.specBuffer().setMisspecCallback(
        [&](Addr, mem::MisspecKind) { ++misspecs; });
    EXPECT_TRUE(h.pmc.acceptPersist(1, 0x1000, SpecId{5}));
    // Far outside the speculation window the race cannot be real.
    h.eq.runUntil(h.cfg.effectiveSpecWindow() * 4);
    EXPECT_TRUE(h.pmc.acceptPersist(0, 0x1000, SpecId{3}));
    EXPECT_EQ(misspecs, 0);
    h.eq.run();
}

TEST(PmController, UntaggedPersistsNeverStoreMisspeculate)
{
    Harness h(Design::PmemSpec);
    int misspecs = 0;
    h.pmc.specBuffer().setMisspecCallback(
        [&](Addr, mem::MisspecKind) { ++misspecs; });
    for (int i = 0; i < 100; ++i)
        h.pmc.acceptPersist(i % 4, 0x1000, std::nullopt);
    EXPECT_EQ(misspecs, 0);
    h.eq.run();
}

TEST(PmController, HopsBloomDelaysConflictingReads)
{
    Harness h(Design::HOPS);
    // Simulate a buffered persist: the filter knows about the block.
    h.pmc.filterInsert(0x1000);
    Tick done = 0;
    h.pmc.read(0x1000, [&] { done = h.eq.now(); });
    h.eq.runUntil(nsToTicks(500));
    EXPECT_EQ(done, 0u); // postponed: true conflict
    EXPECT_EQ(h.pmc.bloomTrueHits.value(), 1u);
    h.pmc.filterRemove(0x1000); // buffer drained
    h.eq.run();
    EXPECT_GT(done, nsToTicks(500));
}

TEST(PmController, HopsCleanReadPaysOnlyLookup)
{
    Harness h(Design::HOPS);
    Tick done = 0;
    h.pmc.read(0x1000, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(done, h.cfg.bloomLookupLatency + nsToTicks(175));
}

TEST(PmController, NonHopsReadsSkipTheBloomFilter)
{
    Harness h(Design::PmemSpec);
    Tick done = 0;
    h.pmc.read(0x1000, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(done, nsToTicks(175));
}

TEST(PmController, SpecBufferOnlyExistsForPmemSpec)
{
    Harness h(Design::IntelX86);
    EXPECT_DEATH(h.pmc.specBuffer(), "PMEM-Spec");
}
