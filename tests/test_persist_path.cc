/**
 * @file
 * Unit tests for the decoupled persist-path (Section 4.2): FIFO
 * delivery in commit order, path latency, PMC backpressure, and the
 * spec-barrier drain notification.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mem/persist_path.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using mem::PersistPath;
using sim::EventQueue;

namespace
{

struct Delivery
{
    Addr addr;
    std::optional<SpecId> specId;
    Tick at;
};

struct Harness
{
    EventQueue eq;
    StatGroup stats{"test"};
    std::vector<Delivery> delivered;
    bool accept = true;
    PersistPath path;

    explicit Harness(Tick latency = nsToTicks(20), unsigned cap = 4)
        : path(eq, &stats, 0, latency, cap,
               [this](CoreId, Addr a, std::optional<SpecId> s) {
                   if (!accept)
                       return false;
                   delivered.push_back(Delivery{a, s, eq.now()});
                   return true;
               })
    {
    }
};

} // namespace

TEST(PersistPath, DeliversAfterPathLatency)
{
    Harness h;
    h.path.send(0x1000, std::nullopt);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 1u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u);
    EXPECT_EQ(h.delivered[0].at, nsToTicks(20));
}

TEST(PersistPath, PreservesCommitOrder)
{
    Harness h;
    h.path.send(0x1000, std::nullopt);
    h.path.send(0x2000, std::nullopt);
    h.path.send(0x3000, std::nullopt);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 3u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u);
    EXPECT_EQ(h.delivered[1].addr, 0x2000u);
    EXPECT_EQ(h.delivered[2].addr, 0x3000u);
    EXPECT_LE(h.delivered[0].at, h.delivered[1].at);
    EXPECT_LE(h.delivered[1].at, h.delivered[2].at);
}

TEST(PersistPath, CarriesSpeculationIds)
{
    Harness h;
    h.path.send(0x1000, SpecId{7});
    h.path.send(0x2000, std::nullopt);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].specId, SpecId{7});
    EXPECT_FALSE(h.delivered[1].specId.has_value());
}

TEST(PersistPath, FlitRateSpacesBackToBackSends)
{
    Harness h;
    // Sent in the same tick, they arrive one flit-cycle apart.
    h.path.send(0x1000, std::nullopt);
    h.path.send(0x2000, std::nullopt);
    h.eq.run();
    EXPECT_EQ(h.delivered[0].at, nsToTicks(20));
    EXPECT_EQ(h.delivered[1].at, nsToTicks(21));
}

TEST(PersistPath, FullAppliesBackpressure)
{
    Harness h(nsToTicks(20), 2);
    h.path.send(0x1000, std::nullopt);
    h.path.send(0x2000, std::nullopt);
    EXPECT_TRUE(h.path.full());
    bool spaced = false;
    h.path.notifyWhenNotFull([&] { spaced = true; });
    EXPECT_FALSE(spaced);
    h.eq.run();
    EXPECT_TRUE(spaced);
    EXPECT_FALSE(h.path.full());
}

TEST(PersistPath, SendWhileFullPanics)
{
    Harness h(nsToTicks(20), 1);
    h.path.send(0x1000, std::nullopt);
    EXPECT_DEATH(h.path.send(0x2000, std::nullopt), "overflow");
}

TEST(PersistPath, RetriesOnPmcBackpressure)
{
    Harness h;
    h.accept = false;
    h.path.send(0x1000, std::nullopt);
    h.eq.runUntil(nsToTicks(100));
    EXPECT_TRUE(h.delivered.empty());
    EXPECT_GT(h.path.pathRetries.value(), 0u);
    h.accept = true;
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 1u);
    EXPECT_EQ(h.path.deliveries.value(), 1u);
}

TEST(PersistPath, OrderSurvivesBackpressure)
{
    Harness h;
    h.accept = false;
    h.path.send(0x1000, std::nullopt);
    h.path.send(0x2000, std::nullopt);
    h.eq.runUntil(nsToTicks(200));
    h.accept = true;
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u);
    EXPECT_EQ(h.delivered[1].addr, 0x2000u);
}

TEST(PersistPath, NotifyWhenEmptyFiresImmediatelyIfIdle)
{
    Harness h;
    bool fired = false;
    h.path.notifyWhenEmpty([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(PersistPath, NotifyWhenEmptyWaitsForDrain)
{
    Harness h;
    h.path.send(0x1000, std::nullopt);
    Tick empty_at = 0;
    h.path.notifyWhenEmpty([&] { empty_at = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(empty_at, nsToTicks(20));
    EXPECT_TRUE(h.path.empty());
}

TEST(PersistPath, ConfigurableLatency)
{
    Harness h(nsToTicks(100));
    h.path.send(0x1000, std::nullopt);
    h.eq.run();
    EXPECT_EQ(h.delivered[0].at, nsToTicks(100));
}

TEST(PersistPath, CountsSendsAndDeliveries)
{
    Harness h;
    for (int i = 0; i < 4; ++i) {
        h.path.send(static_cast<Addr>(0x1000 + 64 * i), std::nullopt);
        h.eq.run();
    }
    EXPECT_EQ(h.path.sends.value(), 4u);
    EXPECT_EQ(h.path.deliveries.value(), 4u);
}
