/**
 * @file
 * End-to-end experiment tests: tiny runs of every benchmark on every
 * design must complete, count the right number of FASEs, and show
 * zero natural misspeculation (Section 8.4).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"

using namespace pmemspec;
using namespace pmemspec::core;
using persistency::Design;
using workloads::BenchId;

namespace
{

ExperimentConfig
tiny(BenchId b, Design d)
{
    ExperimentConfig cfg;
    cfg.bench = b;
    cfg.design = d;
    cfg.workload.numThreads = 2;
    cfg.workload.opsPerThread = 10;
    cfg.workload.seed = 7;
    cfg.machine = defaultMachineConfig(2);
    return cfg;
}

} // namespace

using BenchDesign = std::tuple<BenchId, Design>;

class Matrix : public ::testing::TestWithParam<BenchDesign>
{
};

TEST_P(Matrix, RunsAndCommitsAllFases)
{
    auto [bench, design] = GetParam();
    auto res = runExperiment(tiny(bench, design));
    EXPECT_EQ(res.run.fases, 20u); // 2 threads x 10 ops
    EXPECT_GT(res.throughput, 0.0);
    EXPECT_EQ(res.run.aborts, 0u);
}

TEST_P(Matrix, NoNaturalMisspeculation)
{
    // Section 8.4: "In our evaluation, PMEM-Spec never experienced
    // misspeculation."
    auto [bench, design] = GetParam();
    if (design != Design::PmemSpec)
        GTEST_SKIP();
    auto res = runExperiment(tiny(bench, design));
    EXPECT_EQ(res.run.loadMisspecs, 0u);
    EXPECT_EQ(res.run.storeMisspecs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Matrix,
    ::testing::Combine(::testing::ValuesIn(workloads::allBenchmarks()),
                       ::testing::Values(Design::IntelX86, Design::DPO,
                                         Design::HOPS,
                                         Design::PmemSpec)),
    [](const ::testing::TestParamInfo<BenchDesign> &info) {
        std::string n =
            std::string(workloads::benchName(std::get<0>(info.param))) +
            "_" + persistency::designName(std::get<1>(info.param));
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Experiment, NormalizedBaselineIsOne)
{
    workloads::WorkloadParams p;
    p.numThreads = 2;
    p.opsPerThread = 20;
    auto row = runNormalized(BenchId::ArraySwaps,
                             defaultMachineConfig(2), p);
    EXPECT_EQ(row.bench, BenchId::ArraySwaps);
    EXPECT_EQ(row.baseline, Design::IntelX86);
    EXPECT_EQ(row.designs, persistency::allDesigns());
    EXPECT_DOUBLE_EQ(row.normalized[Design::IntelX86], 1.0);
    for (Design d : row.designs) {
        const double v = row.normalized.at(d);
        EXPECT_GT(v, 0.1) << persistency::designName(d);
        EXPECT_LT(v, 10.0);
        // The raw throughputs back out of the normalised values.
        EXPECT_DOUBLE_EQ(
            v, row.throughput.at(d) /
                   row.throughput.at(Design::IntelX86));
    }
}

TEST(Experiment, NormalizedSubsetAlwaysMeasuresBaseline)
{
    workloads::WorkloadParams p;
    p.numThreads = 2;
    p.opsPerThread = 10;
    auto row = runNormalized(BenchId::Queue, defaultMachineConfig(2),
                             p, {Design::HOPS});
    // Requested columns only...
    ASSERT_EQ(row.designs.size(), 1u);
    EXPECT_EQ(row.designs[0], Design::HOPS);
    // ...but the baseline was still run to normalise against.
    EXPECT_GT(row.throughput.at(Design::IntelX86), 0.0);
    EXPECT_GT(row.normalized.at(Design::HOPS), 0.0);
}

TEST(Experiment, ConfigSetterChaining)
{
    auto cfg = ExperimentConfig()
                   .withBench(BenchId::Tpcc)
                   .withDesign(Design::HOPS)
                   .withMachine(defaultMachineConfig(4))
                   .withThreads(4)
                   .withOps(123)
                   .withSeed(9);
    EXPECT_EQ(cfg.bench, BenchId::Tpcc);
    EXPECT_EQ(cfg.design, Design::HOPS);
    EXPECT_EQ(cfg.machine.mem.numCores, 4u);
    EXPECT_EQ(cfg.workload.numThreads, 4u);
    EXPECT_EQ(cfg.workload.opsPerThread, 123u);
    EXPECT_EQ(cfg.workload.seed, 9u);
}

TEST(Experiment, ResultCarriesStatsSnapshot)
{
    auto res = runExperiment(tiny(BenchId::ArraySwaps,
                                  Design::PmemSpec));
    ASSERT_FALSE(res.stats.empty());
    // The machine root stat is always registered.
    bool found = false;
    for (const auto &sv : res.stats)
        if (sv.name == "machine.misspecInterrupts")
            found = true;
    EXPECT_TRUE(found);
    EXPECT_DOUBLE_EQ(res.statOr("machine.misspecInterrupts", -1), 0);
    EXPECT_DOUBLE_EQ(res.statOr("no.such.stat", -7), -7);
}

TEST(Experiment, DeterministicThroughput)
{
    auto a = runExperiment(tiny(BenchId::Queue, Design::PmemSpec));
    auto b = runExperiment(tiny(BenchId::Queue, Design::PmemSpec));
    EXPECT_EQ(a.run.simTicks, b.run.simTicks);
}

TEST(Experiment, DefaultConfigMatchesTable3)
{
    auto cfg = defaultMachineConfig(8);
    EXPECT_EQ(cfg.mem.numCores, 8u);
    EXPECT_EQ(cfg.core.sqEntries, 32u);
    EXPECT_DOUBLE_EQ(cfg.core.freqGhz, 2.0);
    EXPECT_EQ(cfg.mem.l1Bytes, 64u * 1024);
    EXPECT_EQ(cfg.mem.l1Ways, 4u);
    EXPECT_EQ(cfg.mem.l1HitLatency, nsToTicks(2));
    EXPECT_EQ(cfg.mem.llcBytes, 16u * 1024 * 1024);
    EXPECT_EQ(cfg.mem.llcWays, 16u);
    EXPECT_EQ(cfg.mem.llcHitLatency, nsToTicks(20));
    EXPECT_EQ(cfg.mem.pmReadLatency, nsToTicks(175));
    EXPECT_EQ(cfg.mem.pmWriteLatency, nsToTicks(94));
    EXPECT_EQ(cfg.mem.pmcReadQueue, 32u);
    EXPECT_EQ(cfg.mem.pmcWriteQueue, 64u);
    EXPECT_EQ(cfg.mem.specBufferEntries, 4u);
    EXPECT_EQ(cfg.mem.persistPathLatency, nsToTicks(20));
    // Ring bus: window = cores x idle path latency = 160ns.
    EXPECT_EQ(cfg.mem.effectiveSpecWindow(), nsToTicks(160));
}

TEST(Experiment, PrintConfigMentionsKeyParameters)
{
    std::ostringstream os;
    printConfig(os, defaultMachineConfig(8));
    const std::string out = os.str();
    EXPECT_NE(out.find("175"), std::string::npos);
    EXPECT_NE(out.find("94"), std::string::npos);
    EXPECT_NE(out.find("16MB"), std::string::npos);
    EXPECT_NE(out.find("speculation"), std::string::npos);
}
