/**
 * @file
 * Machine-level integration tests: multi-core determinism, the
 * spec-buffer pause, and misspeculation-driven rollback.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"

using namespace pmemspec;
using cpu::Machine;
using cpu::MachineConfig;
using cpu::Trace;
using cpu::TraceOp;
using persistency::Design;

namespace
{

MachineConfig
config(Design d, unsigned cores)
{
    MachineConfig m;
    m.design = d;
    m.mem.numCores = cores;
    return m;
}

Trace
simpleFase(Addr base, int stores)
{
    Trace t;
    t.push_back({TraceOp::FaseBegin, 0});
    for (int i = 0; i < stores; ++i)
        t.push_back({TraceOp::Store, base + static_cast<Addr>(i) * 8});
    t.push_back({TraceOp::SpecBarrier, 0});
    t.push_back({TraceOp::FaseEnd, 0});
    return t;
}

} // namespace

TEST(Machine, RunsMultipleCoresToCompletion)
{
    Machine m(config(Design::PmemSpec, 4));
    std::vector<Trace> traces;
    for (unsigned c = 0; c < 4; ++c)
        traces.push_back(simpleFase(0x10000 + c * 0x1000, 8));
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.fases, 4u);
    EXPECT_GT(r.simTicks, 0u);
}

TEST(Machine, DeterministicAcrossRuns)
{
    Tick first = 0;
    for (int rep = 0; rep < 3; ++rep) {
        Machine m(config(Design::HOPS, 2));
        std::vector<Trace> traces;
        traces.push_back(simpleFase(0x10000, 4));
        traces.push_back(simpleFase(0x20000, 4));
        // HOPS traces use dfence, not spec-barrier; patch them.
        for (auto &t : traces)
            for (auto &i : t)
                if (i.op == TraceOp::SpecBarrier)
                    i.op = TraceOp::Dfence;
        m.setTraces(std::move(traces));
        auto r = m.run();
        if (rep == 0)
            first = r.simTicks;
        else
            EXPECT_EQ(r.simTicks, first);
    }
}

TEST(Machine, WrongTraceCountIsFatal)
{
    Machine m(config(Design::IntelX86, 2));
    std::vector<Trace> traces(1);
    EXPECT_DEATH(m.setTraces(std::move(traces)), "traces for");
}

TEST(Machine, SpecBufferOverflowPausesButCompletes)
{
    MachineConfig cfg = config(Design::PmemSpec, 2);
    cfg.mem.specBufferEntries = 1;
    cfg.mem.l1Bytes = 1024;     // 16 blocks
    cfg.mem.llcBytes = 2048;    // 32 blocks: heavy dirty eviction
    Machine m(cfg);
    std::vector<Trace> traces;
    for (unsigned c = 0; c < 2; ++c) {
        Trace t;
        t.push_back({TraceOp::FaseBegin, 0});
        for (int i = 0; i < 256; ++i)
            t.push_back({TraceOp::Store,
                         0x10000 + c * 0x100000 +
                             static_cast<Addr>(i) * 64});
        t.push_back({TraceOp::SpecBarrier, 0});
        t.push_back({TraceOp::FaseEnd, 0});
        traces.push_back(std::move(t));
    }
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.fases, 2u);
    EXPECT_GT(r.specBufFullPauses, 0u);
}

TEST(Machine, MisspecInterruptAbortsAndReexecutesFases)
{
    // Drive the speculation machinery directly: mid-run, fire the
    // misspec callback and observe the rollback re-execute the FASE.
    MachineConfig cfg = config(Design::PmemSpec, 1);
    cfg.misspecInterruptLatency = nsToTicks(50);
    cfg.abortHandlerLatency = nsToTicks(50);
    Machine m(cfg);
    Trace t = simpleFase(0x10000, 4);
    std::vector<Trace> traces{t};
    m.setTraces(std::move(traces));
    // Inject a virtual power failure shortly after the run starts.
    auto &sb = m.memory().pmc().specBuffer();
    m.eventQueue().schedule(After{nsToTicks(1)}, [&] {
        sb.reportStoreMisspec(0x10000);
    });
    auto r = m.run();
    EXPECT_EQ(r.fases, 1u);      // still commits exactly once
    EXPECT_EQ(r.aborts, 1u);     // after one rollback
    EXPECT_EQ(r.storeMisspecs, 1u);
    // The rollback charged interrupt + abort-handler latency.
    EXPECT_GE(r.simTicks, m.config().misspecInterruptLatency +
                              m.config().abortHandlerLatency);
}

TEST(Machine, MisspecOutsideFaseIsHarmless)
{
    Machine m(config(Design::PmemSpec, 1));
    Trace t;
    t.push_back({TraceOp::Compute, 10000}); // not inside any FASE
    std::vector<Trace> traces{std::move(t)};
    m.setTraces(std::move(traces));
    m.eventQueue().schedule(After{nsToTicks(1)}, [&] {
        m.memory().pmc().specBuffer().reportStoreMisspec(0x10000);
    });
    auto r = m.run();
    EXPECT_EQ(r.aborts, 0u);
}

TEST(Machine, RollbackReleasesAndReacquiresLocks)
{
    Machine m(config(Design::PmemSpec, 2));
    Trace t;
    t.push_back({TraceOp::FaseBegin, 0});
    t.push_back({TraceOp::LockAcq, 1});
    t.push_back({TraceOp::SpecAssign, 0});
    t.push_back({TraceOp::Store, 0x10000});
    t.push_back({TraceOp::Compute, 4000});
    t.push_back({TraceOp::SpecBarrier, 0});
    t.push_back({TraceOp::FaseEnd, 0});
    t.push_back({TraceOp::SpecRevoke, 0});
    t.push_back({TraceOp::LockRel, 1});
    std::vector<Trace> traces{t, t};
    m.setTraces(std::move(traces));
    m.eventQueue().schedule(After{nsToTicks(100)}, [&] {
        m.memory().pmc().specBuffer().reportStoreMisspec(0x10000);
    });
    auto r = m.run();
    // Both cores complete their FASE despite the rollback (the lock
    // was released by the abort handler and reacquired on retry).
    EXPECT_EQ(r.fases, 2u);
    EXPECT_GE(r.aborts, 1u);
}

TEST(Machine, ThroughputMetricIsConsistent)
{
    Machine m(config(Design::IntelX86, 1));
    Trace t;
    for (int f = 0; f < 10; ++f) {
        t.push_back({TraceOp::FaseBegin, 0});
        t.push_back({TraceOp::Compute, 200});
        t.push_back({TraceOp::FaseEnd, 0});
    }
    std::vector<Trace> traces{std::move(t)};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.fases, 10u);
    // 10 FASEs of 100ns each -> 10M FASEs/s.
    EXPECT_NEAR(r.throughput(), 1e7, 1e6);
}
