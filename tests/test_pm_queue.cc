/**
 * @file
 * Unit tests for the persistent FIFO queue.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hh"
#include "pmds/pm_queue.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::PmQueue;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 22};
    VirtualOs os;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy};
    PmQueue q{pm, 64};

    void
    enq(std::uint64_t v)
    {
        rt.runFase(0, [&](Transaction &tx) { q.enqueue(tx, v); });
    }

    std::optional<std::uint64_t>
    deq()
    {
        std::optional<std::uint64_t> out;
        rt.runFase(0, [&](Transaction &tx) { out = q.dequeue(tx); });
        return out;
    }
};

} // namespace

TEST(PmQueue, StartsEmpty)
{
    Harness h;
    EXPECT_EQ(h.q.size(), 0u);
    EXPECT_FALSE(h.q.front().has_value());
    EXPECT_TRUE(h.q.checkInvariants());
}

TEST(PmQueue, DequeueEmptyReturnsNothing)
{
    Harness h;
    EXPECT_FALSE(h.deq().has_value());
    EXPECT_TRUE(h.q.checkInvariants());
}

TEST(PmQueue, FifoOrder)
{
    Harness h;
    for (std::uint64_t v = 1; v <= 5; ++v)
        h.enq(v);
    EXPECT_EQ(h.q.size(), 5u);
    for (std::uint64_t v = 1; v <= 5; ++v)
        EXPECT_EQ(h.deq(), v);
    EXPECT_EQ(h.q.size(), 0u);
}

TEST(PmQueue, SingleElementEnqueueDequeue)
{
    Harness h;
    h.enq(42);
    EXPECT_EQ(h.q.front(), 42u);
    EXPECT_EQ(h.deq(), 42u);
    EXPECT_TRUE(h.q.checkInvariants());
    // Queue is usable again after emptying.
    h.enq(43);
    EXPECT_EQ(h.deq(), 43u);
}

TEST(PmQueue, InvariantsHoldUnderRandomOps)
{
    Harness h;
    std::deque<std::uint64_t> model;
    Rng rng(3);
    for (int op = 0; op < 600; ++op) {
        if (rng.chance(0.6)) {
            h.enq(op);
            model.push_back(static_cast<std::uint64_t>(op));
        } else {
            auto got = h.deq();
            if (model.empty()) {
                ASSERT_FALSE(got.has_value());
            } else {
                ASSERT_EQ(got, model.front());
                model.pop_front();
            }
        }
        ASSERT_EQ(h.q.size(), model.size());
        ASSERT_TRUE(h.q.checkInvariants());
    }
}

TEST(PmQueue, AbortedEnqueueLeavesQueueIntact)
{
    Harness h;
    h.enq(1);
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.q.enqueue(tx, 999);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.q.size(), 1u);
    EXPECT_EQ(h.q.front(), 1u);
    EXPECT_TRUE(h.q.checkInvariants());
}

TEST(PmQueue, AbortedDequeueKeepsElement)
{
    Harness h;
    h.enq(5);
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.q.dequeue(tx);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.q.size(), 1u);
    EXPECT_EQ(h.q.front(), 5u);
}

TEST(PmQueue, ValueBytesConfigurable)
{
    PersistentMemory pm(1 << 20);
    PmQueue q(pm, 128);
    EXPECT_EQ(q.valueBytes(), 128u);
}
