/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "common/stats.hh"

using namespace pmemspec;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 9;
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksSumMinMaxMean)
{
    Accumulator a;
    a.sample(2);
    a.sample(8);
    a.sample(5);
    EXPECT_DOUBLE_EQ(a.sum(), 15);
    EXPECT_DOUBLE_EQ(a.mean(), 5);
    EXPECT_DOUBLE_EQ(a.min(), 2);
    EXPECT_DOUBLE_EQ(a.max(), 8);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Accumulator, EmptyMeanIsZero)
{
    Accumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator a;
    a.sample(-3);
    a.sample(1);
    EXPECT_DOUBLE_EQ(a.min(), -3);
    EXPECT_DOUBLE_EQ(a.max(), 1);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    Histogram h(0, 10, 5); // buckets of width 2
    h.sample(1);  // bucket 0
    h.sample(3);  // bucket 1
    h.sample(9);  // bucket 4
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(Histogram, UnderOverflowBins)
{
    Histogram h(0, 10, 5);
    h.sample(-1);
    h.sample(10); // hi is exclusive
    h.sample(100);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 2u);
}

TEST(Histogram, MeanIncludesOutOfRange)
{
    Histogram h(0, 10, 2);
    h.sample(0);
    h.sample(20);
    EXPECT_DOUBLE_EQ(h.mean(), 10);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0, 4, 4);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(1), 0u);
}

TEST(StatGroup, DumpsQualifiedNames)
{
    StatGroup root("machine");
    StatGroup child("core0", &root);
    Counter c;
    c += 5;
    child.addCounter("fases", &c, "sections done");
    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("machine.core0.fases 5"), std::string::npos);
    EXPECT_NE(out.find("sections done"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Counter a, b;
    a += 1;
    b += 2;
    root.addCounter("a", &a);
    child.addCounter("b", &b);
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, VisitEnumeratesFlatNameValuePairs)
{
    StatGroup root("machine");
    StatGroup child("core0", &root);
    Counter c;
    c += 5;
    root.addCounter("fases", &c, "committed");
    Accumulator a;
    a.sample(2);
    a.sample(4);
    child.addAccumulator("occ", &a);
    Histogram h(0, 10, 2);
    h.sample(1);
    h.sample(100);
    child.addHistogram("lat", &h);

    std::map<std::string, double> seen;
    root.visit([&](const StatValue &sv) { seen[sv.name] = sv.value; });

    EXPECT_DOUBLE_EQ(seen.at("machine.fases"), 5);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.occ.mean"), 3);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.occ.min"), 2);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.occ.max"), 4);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.occ.samples"), 2);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.lat.samples"), 2);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.lat.overflows"), 1);
    EXPECT_DOUBLE_EQ(seen.at("machine.core0.lat.underflows"), 0);

    // flatten() sees the same set, in deterministic order.
    auto flat = root.flatten();
    EXPECT_EQ(flat.size(), seen.size());
    EXPECT_EQ(flat.front().name, "machine.fases");
    auto flat2 = root.flatten();
    for (std::size_t i = 0; i < flat.size(); ++i)
        EXPECT_EQ(flat[i].name, flat2[i].name);
}

TEST(StatGroup, ToJsonKeepsCountersIntegral)
{
    StatGroup root("m");
    Counter c;
    c += 3;
    root.addCounter("events", &c);
    Accumulator a;
    a.sample(0.5);
    root.addAccumulator("ratio", &a);

    const Json j = root.toJson();
    ASSERT_NE(j.find("m.events"), nullptr);
    EXPECT_EQ(j.find("m.events")->dump(), "3");
    ASSERT_NE(j.find("m.ratio.mean"), nullptr);
    EXPECT_EQ(j.find("m.ratio.mean")->dump(), "0.5");
}

TEST(StatGroup, ResetAllClearsHistograms)
{
    StatGroup root("r");
    Histogram h(0, 4, 2);
    h.sample(1);
    root.addHistogram("h", &h);
    root.resetAll();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4, 1}), 2);
    EXPECT_NEAR(geomean({1, 2, 4}), 2, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0);
    EXPECT_DOUBLE_EQ(geomean({7}), 7);
}
