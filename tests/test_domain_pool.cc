/**
 * @file
 * Unit tests for the deterministic domain-parallel primitive: the
 * DomainPool worker loop (coverage, inline fallback, error capture
 * and rethrow) and the mergeDomains stable merge, plus the contract
 * the whole repo leans on -- one thread and many threads produce the
 * same bytes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/domain_pool.hh"

using pmemspec::Rng;
using pmemspec::sim::DomainPool;
using pmemspec::sim::mergeDomains;

TEST(DomainPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 5u}) {
        DomainPool pool(threads);
        std::vector<std::atomic<int>> hits(97);
        for (auto &h : hits)
            h.store(0);
        pool.run(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(DomainPool, ZeroThreadsMeansHardwareConcurrency)
{
    DomainPool pool(0);
    EXPECT_GE(pool.threads(), 1u);
    EXPECT_LE(pool.threads(), DomainPool::maxThreads);
}

TEST(DomainPool, ThreadCountIsClamped)
{
    EXPECT_EQ(DomainPool(100000).threads(), DomainPool::maxThreads);
    EXPECT_EQ(DomainPool(3).threads(), 3u);
}

TEST(DomainPool, EmptyAndSingleDomainRunInline)
{
    DomainPool pool(8);
    pool.run(0, [](std::size_t) { FAIL() << "no domains to run"; });
    std::vector<std::size_t> seen;
    // One domain must execute on the calling thread: a re-entrant
    // vector push with no synchronisation would be a data race
    // otherwise, and TSan runs this file.
    pool.run(1, [&](std::size_t i) { seen.push_back(i); });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 0u);
}

TEST(DomainPool, ErrorsLandAtTheirOwnIndex)
{
    DomainPool pool(4);
    std::vector<std::string> errors;
    pool.run(
        6,
        [&](std::size_t i) {
            if (i % 2 == 1)
                throw std::runtime_error("boom " + std::to_string(i));
        },
        &errors);
    ASSERT_EQ(errors.size(), 6u);
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i % 2 == 1)
            EXPECT_EQ(errors[i], "boom " + std::to_string(i));
        else
            EXPECT_TRUE(errors[i].empty());
    }
}

TEST(DomainPool, LowestIndexErrorIsRethrown)
{
    // Host scheduling decides which failing domain *finishes* first;
    // the rethrown one must still be the lowest index, every run.
    DomainPool pool(4);
    try {
        pool.run(8, [&](std::size_t i) {
            if (i >= 3)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "domain 3: boom 3");
    }
}

TEST(DomainPool, LaterDomainsStillRunAfterAnError)
{
    DomainPool pool(2);
    std::vector<std::atomic<int>> hits(16);
    for (auto &h : hits)
        h.store(0);
    std::vector<std::string> errors;
    pool.run(
        hits.size(),
        [&](std::size_t i) {
            hits[i].fetch_add(1);
            if (i == 0)
                throw std::runtime_error("early");
        },
        &errors);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(DomainPool, OneVsManyThreadsProduceIdenticalResults)
{
    // The repo-wide contract in miniature: per-domain deterministic
    // work (a seeded RNG stream per domain, split from one root
    // seed), results in per-index slots, merged after the join. The
    // bytes must not depend on the worker count.
    auto runWith = [](unsigned threads) {
        DomainPool pool(threads);
        std::vector<std::vector<std::uint64_t>> parts(13);
        pool.run(parts.size(), [&](std::size_t i) {
            Rng rng = Rng::split(99, i);
            for (int k = 0; k < 256; ++k)
                parts[i].push_back(rng.next());
        });
        return parts;
    };
    const auto seq = runWith(1);
    for (unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(runWith(threads), seq);
}

namespace
{

struct Record
{
    std::uint64_t tick;
    unsigned domain;
    bool operator==(const Record &o) const
    {
        return tick == o.tick && domain == o.domain;
    }
};

} // namespace

TEST(DomainPool, MergeDomainsKeepsDomainOrderOnTies)
{
    // Three domains emit records at overlapping ticks; equal ticks
    // must come out in ascending domain order (stable merge), which
    // is what makes the merged stream host-thread-count invariant.
    std::vector<std::vector<Record>> parts = {
        {{10, 0}, {30, 0}},
        {{10, 1}, {20, 1}, {30, 1}},
        {{5, 2}, {30, 2}},
    };
    const auto merged = mergeDomains(
        std::move(parts),
        [](const Record &a, const Record &b) { return a.tick < b.tick; });
    const std::vector<Record> want = {
        {5, 2},  {10, 0}, {10, 1}, {20, 1},
        {30, 0}, {30, 1}, {30, 2},
    };
    EXPECT_EQ(merged, want);
}

TEST(DomainPool, MergeDomainsHandlesEmptyParts)
{
    std::vector<std::vector<int>> parts = {{}, {3, 1}, {}, {2}};
    const auto merged = mergeDomains(
        std::move(parts), [](int a, int b) { return a < b; });
    EXPECT_EQ(merged, (std::vector<int>{1, 2, 3}));
}
