/**
 * @file
 * Unit tests for the OS misspeculation relay (Section 6.1.1).
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/virtual_os.hh"

using namespace pmemspec;
using runtime::Pid;
using runtime::VirtualOs;

TEST(VirtualOs, RegistersDistinctPids)
{
    VirtualOs os;
    Pid a = os.registerProcess([](Addr) {});
    Pid b = os.registerProcess([](Addr) {});
    EXPECT_NE(a, b);
}

TEST(VirtualOs, RelaysToTheOwningProcess)
{
    VirtualOs os;
    std::vector<Addr> a_faults, b_faults;
    Pid a = os.registerProcess([&](Addr f) { a_faults.push_back(f); });
    Pid b = os.registerProcess([&](Addr f) { b_faults.push_back(f); });
    os.registerRegion(a, 0x1000, 0x1000);
    os.registerRegion(b, 0x4000, 0x1000);

    auto hit = os.raiseMisspecInterrupt(0x1800);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, a);
    EXPECT_EQ(a_faults, std::vector<Addr>{0x1800});
    EXPECT_TRUE(b_faults.empty());

    hit = os.raiseMisspecInterrupt(0x4000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, b);
}

TEST(VirtualOs, MailboxHoldsTheFaultingAddress)
{
    VirtualOs os;
    Pid p = os.registerProcess([](Addr) {});
    os.registerRegion(p, 0x1000, 0x100);
    os.raiseMisspecInterrupt(0x1050);
    EXPECT_EQ(os.mailbox(), 0x1050u);
}

TEST(VirtualOs, UnownedAddressesAreDropped)
{
    VirtualOs os;
    Pid p = os.registerProcess([](Addr) {});
    os.registerRegion(p, 0x1000, 0x100);
    auto hit = os.raiseMisspecInterrupt(0x9000);
    EXPECT_FALSE(hit.has_value());
    EXPECT_EQ(os.dropped(), 1u);
    EXPECT_EQ(os.delivered(), 0u);
}

TEST(VirtualOs, RegionBoundariesAreHalfOpen)
{
    VirtualOs os;
    Pid p = os.registerProcess([](Addr) {});
    os.registerRegion(p, 0x1000, 0x100);
    EXPECT_TRUE(os.raiseMisspecInterrupt(0x1000).has_value());
    EXPECT_TRUE(os.raiseMisspecInterrupt(0x10ff).has_value());
    EXPECT_FALSE(os.raiseMisspecInterrupt(0x1100).has_value());
}

TEST(VirtualOs, UnregisterStopsDelivery)
{
    VirtualOs os;
    int delivered = 0;
    Pid p = os.registerProcess([&](Addr) { ++delivered; });
    os.registerRegion(p, 0x1000, 0x100);
    os.unregisterProcess(p);
    EXPECT_FALSE(os.raiseMisspecInterrupt(0x1000).has_value());
    EXPECT_EQ(delivered, 0);
}

TEST(VirtualOs, MultipleRegionsPerProcess)
{
    VirtualOs os;
    int delivered = 0;
    Pid p = os.registerProcess([&](Addr) { ++delivered; });
    os.registerRegion(p, 0x1000, 0x100);
    os.registerRegion(p, 0x8000, 0x100);
    os.raiseMisspecInterrupt(0x1000);
    os.raiseMisspecInterrupt(0x8050);
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(os.delivered(), 2u);
}

TEST(VirtualOs, RegisterRegionForUnknownPidIsFatal)
{
    VirtualOs os;
    EXPECT_DEATH(os.registerRegion(99, 0, 10), "unknown pid");
}

TEST(VirtualOs, ZeroLengthRegionIsFatal)
{
    VirtualOs os;
    Pid p = os.registerProcess([](Addr) {});
    EXPECT_DEATH(os.registerRegion(p, 0x1000, 0), "zero-length");
}

TEST(VirtualOs, WrappingRegionIsFatal)
{
    VirtualOs os;
    Pid p = os.registerProcess([](Addr) {});
    EXPECT_DEATH(os.registerRegion(p, ~Addr{0} - 10, 100), "wraps");
}

TEST(VirtualOs, OverlappingRegionsAreFatal)
{
    VirtualOs os;
    Pid a = os.registerProcess([](Addr) {});
    Pid b = os.registerProcess([](Addr) {});
    os.registerRegion(a, 0x1000, 0x1000);
    // Partial overlap, containment, and identity must all be caught,
    // whether from another process or the same one.
    EXPECT_DEATH(os.registerRegion(b, 0x1800, 0x1000), "overlaps");
    EXPECT_DEATH(os.registerRegion(b, 0x1100, 0x10), "overlaps");
    EXPECT_DEATH(os.registerRegion(a, 0x1000, 0x1000), "overlaps");
    EXPECT_DEATH(os.registerRegion(b, 0x800, 0x801), "overlaps");
}

TEST(VirtualOs, AdjacentRegionsAreAllowed)
{
    VirtualOs os;
    Pid a = os.registerProcess([](Addr) {});
    Pid b = os.registerProcess([](Addr) {});
    os.registerRegion(a, 0x1000, 0x1000);
    os.registerRegion(b, 0x2000, 0x1000); // half-open: no overlap
    os.registerRegion(b, 0x0800, 0x0800);
    EXPECT_EQ(os.raiseMisspecInterrupt(0x1fff), a);
    EXPECT_EQ(os.raiseMisspecInterrupt(0x2000), b);
}

TEST(VirtualOs, UnregisterFreesTheRegionForReuse)
{
    VirtualOs os;
    Pid a = os.registerProcess([](Addr) {});
    os.registerRegion(a, 0x1000, 0x1000);
    os.unregisterProcess(a);
    Pid b = os.registerProcess([](Addr) {});
    os.registerRegion(b, 0x1000, 0x1000); // no stale overlap
    EXPECT_EQ(os.raiseMisspecInterrupt(0x1000), b);
}
