/**
 * @file
 * Unit tests for the HOPS/DPO persist buffers: epoch ordering,
 * coalescing, drain width, the DPO global-flush token, cross-thread
 * dependencies, and dfence notification.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/persist_buffer.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using mem::GlobalDrainToken;
using mem::PersistBuffer;
using sim::EventQueue;

namespace
{

struct Delivery
{
    CoreId core;
    Addr addr;
    Tick at;
};

struct Harness
{
    EventQueue eq;
    StatGroup stats{"test"};
    std::vector<Delivery> delivered;
    bool accept = true;
    GlobalDrainToken token;

    PersistBuffer
    make(CoreId core, unsigned capacity = 32, unsigned width = 4,
         bool strict = false)
    {
        return PersistBuffer(
            eq, &stats, core, nsToTicks(20), capacity, width, strict,
            strict ? &token : nullptr, [this](CoreId c, Addr a) {
                if (!accept)
                    return false;
                delivered.push_back(Delivery{c, a, eq.now()});
                return true;
            });
    }
};

} // namespace

TEST(PersistBuffer, DrainsAnAppendedEntry)
{
    Harness h;
    auto buf = h.make(0);
    buf.append(0x1000);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 1u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u);
    EXPECT_EQ(h.delivered[0].at, nsToTicks(20));
    EXPECT_TRUE(buf.empty());
}

TEST(PersistBuffer, CoalescesSameBlockSameEpoch)
{
    // The first append launches immediately (in flight); only the
    // still-pending second entry can absorb the third store.
    Harness h;
    auto buf = h.make(0, 32, 1);
    buf.append(0x1000);
    buf.append(0x1000);
    buf.append(0x1000);
    h.eq.run();
    EXPECT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(buf.coalesces.value(), 1u);
}

TEST(PersistBuffer, NoCoalescingAcrossEpochs)
{
    Harness h;
    auto buf = h.make(0);
    buf.append(0x1000);
    buf.ofence();
    buf.append(0x1000);
    h.eq.run();
    EXPECT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(buf.coalesces.value(), 0u);
}

TEST(PersistBuffer, EpochOrderingSerialisesDrains)
{
    Harness h;
    auto buf = h.make(0);
    buf.append(0x1000);
    buf.ofence();
    buf.append(0x2000);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u);
    EXPECT_EQ(h.delivered[1].addr, 0x2000u);
    // Epoch 1 may only start after epoch 0 is durable: 20ns + 20ns.
    EXPECT_GE(h.delivered[1].at, 2 * nsToTicks(20));
}

TEST(PersistBuffer, SameEpochDrainsConcurrently)
{
    Harness h;
    auto buf = h.make(0, 32, 4);
    for (int i = 0; i < 4; ++i)
        buf.append(static_cast<Addr>(0x1000 + 64 * i));
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 4u);
    // All four overlap: all arrive at the drain latency.
    for (const auto &d : h.delivered)
        EXPECT_EQ(d.at, nsToTicks(20));
}

TEST(PersistBuffer, DrainWidthLimitsConcurrency)
{
    Harness h;
    auto buf = h.make(0, 32, 2);
    for (int i = 0; i < 4; ++i)
        buf.append(static_cast<Addr>(0x1000 + 64 * i));
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 4u);
    EXPECT_EQ(h.delivered[0].at, nsToTicks(20));
    EXPECT_EQ(h.delivered[1].at, nsToTicks(20));
    EXPECT_GT(h.delivered[2].at, nsToTicks(20));
}

TEST(PersistBuffer, StrictFifoForcesWidthOne)
{
    Harness h;
    auto buf = h.make(0, 32, 4, /*strict=*/true);
    buf.append(0x1000);
    buf.append(0x2000);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u);
    EXPECT_EQ(h.delivered[1].addr, 0x2000u);
    EXPECT_GT(h.delivered[1].at, h.delivered[0].at);
}

TEST(PersistBuffer, DpoTokenSerialisesAcrossBuffers)
{
    Harness h;
    auto a = h.make(0, 32, 4, true);
    auto b = h.make(1, 32, 4, true);
    a.append(0x1000);
    b.append(0x2000);
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    // The second flush initiation waits for the token hold.
    EXPECT_NE(h.delivered[0].at, h.delivered[1].at);
}

TEST(PersistBuffer, FullAndBackpressure)
{
    Harness h;
    h.accept = false;
    auto buf = h.make(0, 2, 1);
    buf.append(0x1000);
    buf.append(0x2000);
    EXPECT_TRUE(buf.full());
    bool spaced = false;
    buf.notifyWhenNotFull([&] { spaced = true; });
    h.eq.runUntil(nsToTicks(100));
    EXPECT_FALSE(spaced);
    h.accept = true;
    h.eq.run();
    EXPECT_TRUE(spaced);
}

TEST(PersistBuffer, AppendWhileFullPanics)
{
    Harness h;
    h.accept = false;
    auto buf = h.make(0, 1);
    buf.append(0x1000);
    EXPECT_DEATH(buf.append(0x2000), "overflow");
    h.accept = true;
    h.eq.run();
}

TEST(PersistBuffer, NotifyWhenEmptyTracksDrain)
{
    Harness h;
    auto buf = h.make(0);
    buf.append(0x1000);
    Tick empty_at = 0;
    buf.notifyWhenEmpty([&] { empty_at = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(empty_at, nsToTicks(20));
}

TEST(PersistBuffer, DependencyBlocksDrainUntilSatisfied)
{
    Harness h;
    h.accept = false; // hold releaser's entry in flight
    auto releaser = h.make(0);
    auto acquirer = h.make(1);
    releaser.setProgressHook([&] { acquirer.pump(); });

    releaser.append(0x1000);
    // Lock handoff: acquirer depends on everything the releaser
    // buffered so far.
    acquirer.addDependency(&releaser, releaser.nextSeq());
    acquirer.append(0x2000);
    h.eq.runUntil(nsToTicks(200));
    EXPECT_TRUE(h.delivered.empty());
    EXPECT_GT(acquirer.depStalls.value(), 0u);

    h.accept = true;
    h.eq.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].addr, 0x1000u); // releaser persisted first
    EXPECT_EQ(h.delivered[1].addr, 0x2000u);
}

TEST(PersistBuffer, SatisfiedDependencyIsIgnored)
{
    Harness h;
    auto releaser = h.make(0);
    auto acquirer = h.make(1);
    releaser.append(0x1000);
    h.eq.run(); // fully drained
    acquirer.addDependency(&releaser, releaser.nextSeq());
    acquirer.append(0x2000);
    h.eq.run();
    EXPECT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(acquirer.depStalls.value(), 0u);
}

TEST(PersistBuffer, SelfDependencyIsIgnored)
{
    Harness h;
    auto buf = h.make(0);
    buf.append(0x1000);
    buf.addDependency(&buf, 100);
    h.eq.run();
    EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(PersistBuffer, OldestUnpersistedSeqAdvances)
{
    Harness h;
    auto buf = h.make(0);
    EXPECT_EQ(buf.oldestUnpersistedSeq(),
              std::numeric_limits<std::uint64_t>::max());
    buf.append(0x1000);
    EXPECT_EQ(buf.oldestUnpersistedSeq(), 0u);
    h.eq.run();
    EXPECT_EQ(buf.oldestUnpersistedSeq(),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(buf.nextSeq(), 1u);
}

TEST(PersistBuffer, FilterHooksMirrorContents)
{
    Harness h;
    auto buf = h.make(0, 32, 1);
    int inserts = 0, removes = 0;
    buf.setFilterHooks([&](Addr) { ++inserts; },
                       [&](Addr) { ++removes; });
    buf.append(0x1000); // launches in flight
    buf.append(0x1000); // pending
    buf.append(0x1000); // coalesced into the pending entry
    EXPECT_EQ(inserts, 2);
    h.eq.run();
    EXPECT_EQ(removes, 2);
}
