/**
 * @file
 * Cross-design integration invariants: for any benchmark, the four
 * designs replay the same logical work, so design-independent
 * quantities must agree, and each design's persistence machinery must
 * satisfy its own conservation laws.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "persistency/lowering.hh"

using namespace pmemspec;
using persistency::Design;
using workloads::BenchId;

namespace
{

struct RunHandle
{
    std::unique_ptr<cpu::Machine> machine;
    cpu::RunResult result;
};

RunHandle
runOn(BenchId bench, Design design, unsigned threads = 4,
      std::uint64_t ops = 30)
{
    workloads::WorkloadParams p;
    p.numThreads = threads;
    p.opsPerThread = ops;
    p.seed = 11;
    auto logical = workloads::generateTraces(bench, p);
    std::vector<cpu::Trace> traces;
    for (const auto &lt : logical)
        traces.push_back(persistency::lower(lt, design));
    cpu::MachineConfig mc = core::defaultMachineConfig(threads);
    mc.design = design;
    RunHandle h;
    h.machine = std::make_unique<cpu::Machine>(mc);
    h.machine->setTraces(std::move(traces));
    h.result = h.machine->run();
    return h;
}

} // namespace

class DesignInvariants : public ::testing::TestWithParam<BenchId>
{
};

TEST_P(DesignInvariants, AllDesignsCommitTheSameFases)
{
    std::uint64_t expected = 0;
    for (Design d : {Design::IntelX86, Design::DPO, Design::HOPS,
                     Design::PmemSpec}) {
        auto h = runOn(GetParam(), d);
        if (expected == 0)
            expected = h.result.fases;
        EXPECT_EQ(h.result.fases, expected)
            << persistency::designName(d);
        EXPECT_EQ(h.result.fases, 4u * 30u);
    }
}

TEST_P(DesignInvariants, IntelNeverUsesPersistMachinery)
{
    auto h = runOn(GetParam(), Design::IntelX86);
    EXPECT_EQ(h.machine->memory().pmc().persistsAccepted.value(), 0u);
}

TEST_P(DesignInvariants, PmemSpecPersistsEveryCommittedStoreBlock)
{
    auto h = runOn(GetParam(), Design::PmemSpec);
    auto &mem = h.machine->memory();
    std::uint64_t sends = 0;
    for (unsigned c = 0; c < 4; ++c)
        sends += mem.path(c).sends.value();
    // Every send was delivered (paths are empty at the end), and
    // every delivery was either a device write or a coalesce.
    EXPECT_EQ(mem.pmc().persistsAccepted.value(), sends);
    EXPECT_EQ(mem.pmc().writes.value() +
                  mem.pmc().writeCoalesces.value(),
              mem.pmc().persistsAccepted.value());
    EXPECT_GT(sends, 0u);
}

TEST_P(DesignInvariants, BufferedDesignsDrainCompletely)
{
    for (Design d : {Design::HOPS, Design::DPO}) {
        auto h = runOn(GetParam(), d);
        auto &mem = h.machine->memory();
        for (unsigned c = 0; c < 4; ++c) {
            EXPECT_TRUE(mem.pbuf(c).empty())
                << persistency::designName(d) << " core " << c;
            EXPECT_EQ(mem.pbuf(c).appends.value(),
                      mem.pbuf(c).persistsDone.value() +
                          mem.pbuf(c).coalesces.value());
        }
    }
}

TEST_P(DesignInvariants, NoDesignAbortsWithoutMisspeculation)
{
    for (Design d : {Design::IntelX86, Design::DPO, Design::HOPS,
                     Design::PmemSpec}) {
        auto h = runOn(GetParam(), d);
        EXPECT_EQ(h.result.aborts, 0u) << persistency::designName(d);
    }
}

TEST_P(DesignInvariants, PmemSpecDropsRegularPathWritebacks)
{
    auto h = runOn(GetParam(), Design::PmemSpec);
    auto &pmc = h.machine->memory().pmc();
    // Any dirty LLC eviction was dropped, never written.
    EXPECT_EQ(pmc.writes.value() + pmc.writeCoalesces.value(),
              pmc.persistsAccepted.value());
}

TEST_P(DesignInvariants, SameDesignSameSeedIsBitIdentical)
{
    auto a = runOn(GetParam(), Design::PmemSpec);
    auto b = runOn(GetParam(), Design::PmemSpec);
    EXPECT_EQ(a.result.simTicks, b.result.simTicks);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Table4, DesignInvariants,
    ::testing::ValuesIn(workloads::allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchId> &info) {
        std::string n = workloads::benchName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(DesignInvariants, HopsReadsAreNeverFasterThanPmemSpec)
{
    // HOPS pays the bloom lookup + sticky-M bus cycles on the same
    // read stream; its PM read latency can only be higher.
    auto hops = runOn(BenchId::Memcached, Design::HOPS);
    auto spec = runOn(BenchId::Memcached, Design::PmemSpec);
    const double hops_lat =
        hops.machine->memory().pmc().readLatencyStat.mean();
    const double spec_lat =
        spec.machine->memory().pmc().readLatencyStat.mean();
    EXPECT_GE(hops_lat + 1e-9, spec_lat * 0.95);
}
