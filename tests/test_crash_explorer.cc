/**
 * @file
 * Tests for the exhaustive crash-point explorer: every persistent
 * data structure survives a power cut at *every* durable persist
 * prefix of every operation, and the oracles actually catch a
 * structure that breaks the failure-atomicity contract.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "faultinject/crash_explorer.hh"
#include "faultinject/pmds_workloads.hh"

using namespace pmemspec;
using faultinject::CrashWorkload;
using faultinject::ExploreOptions;
using faultinject::ExploreResult;
using faultinject::exploreCrashPoints;
using faultinject::exploreCrashPointsParallel;
using faultinject::makeStandardWorkloads;
using faultinject::workloadFactory;
using runtime::Transaction;

namespace
{

/** Every field of the two results must match -- the parallel
 *  explorer's contract is bit-equality with the sequential one, not
 *  just the same verdict. */
void
expectSameResult(const ExploreResult &seq, const ExploreResult &par)
{
    EXPECT_EQ(par.workload, seq.workload);
    EXPECT_EQ(par.ops, seq.ops);
    EXPECT_EQ(par.crashPoints, seq.crashPoints);
    EXPECT_EQ(par.tornTrials, seq.tornTrials);
    EXPECT_EQ(par.corruptionReported, seq.corruptionReported);
    EXPECT_EQ(par.failures, seq.failures);
    EXPECT_EQ(par.messages, seq.messages);
    EXPECT_EQ(par.messagesSuppressed, seq.messagesSuppressed);
    EXPECT_EQ(par.reorderWindows, seq.reorderWindows);
    EXPECT_EQ(par.naiveStates, seq.naiveStates);
    EXPECT_EQ(par.reorderStatesExplored, seq.reorderStatesExplored);
    EXPECT_EQ(par.reorderStatesDeduped, seq.reorderStatesDeduped);
    EXPECT_EQ(par.elidedPersists, seq.elidedPersists);
    EXPECT_EQ(par.orderingsCollapsed, seq.orderingsCollapsed);
}

} // namespace

TEST(CrashExplorer, AllStandardWorkloadsSurviveEveryCrashPoint)
{
    for (const auto &wl : makeStandardWorkloads()) {
        const auto res = exploreCrashPoints(*wl);
        EXPECT_TRUE(res.passed())
            << res.workload << " failed "
            << res.failures << " oracle check(s); first: "
            << (res.messages.empty() ? "?" : res.messages.front());
        EXPECT_EQ(res.ops, wl->numOps()) << res.workload;
        // Every op has at least the log writes plus a data write, so
        // exhaustive enumeration must visit many more crash points
        // than operations.
        EXPECT_GT(res.crashPoints, 4 * res.ops) << res.workload;
    }
}

// Acceptance oracle of the media-fault work: with torn-write mode on,
// every structure still recovers *or* explicitly reports corruption
// at every crash point x torn-frontier-subset combination. Under the
// checksummed undo log no torn frontier is ever mistaken for valid
// state, so in practice all torn trials recover cleanly and no
// corruption verdict fires.
TEST(CrashExplorer, TornWriteModePassesNoSilentCorruptionOracle)
{
    ExploreOptions opts;
    opts.tornWrites = true;
    for (const auto &wl : makeStandardWorkloads()) {
        const auto res = exploreCrashPoints(*wl, opts);
        EXPECT_TRUE(res.passed())
            << res.workload << " failed " << res.failures
            << " oracle check(s); first: "
            << (res.messages.empty() ? "?" : res.messages.front());
        // Multi-word persists exist in every workload (the 64-byte
        // log payloads at minimum), so torn trials must have run.
        EXPECT_GT(res.tornTrials, res.ops) << res.workload;
        EXPECT_EQ(res.corruptionReported, 0u)
            << res.workload
            << ": a pure torn write is always detectable from the "
               "tombstoned frontier and must not trip the fail-safe";
    }
}

namespace
{

/** A deliberately broken structure: one of its two cells is updated
 *  with a raw PM write that bypasses the undo log, so a crash in the
 *  window where that write is durable but the FASE is not violates
 *  all-or-nothing recovery. The explorer must catch it. */
class BuggyWorkload : public faultinject::CrashWorkload
{
  public:
    const char *name() const override { return "buggy_unlogged"; }

    void
    setup(runtime::PersistentMemory &pm_,
          runtime::FaseRuntime &rt) override
    {
        (void)rt;
        pm = &pm_;
        logged = pm->alloc(8, 64);
        unlogged = pm->alloc(8, 64);
        pm->writeU64(logged, 1);
        pm->writeU64(unlogged, 1);
        pm->persistAll();
        modelLogged = modelUnlogged = 1;
    }

    std::size_t numOps() const override { return 1; }

    void
    runOp(Transaction &tx, std::size_t) override
    {
        tx.writeU64(logged, 2);
        pm->writeU64(unlogged, 2); // BUG: bypasses the undo log
    }

    void
    applyToModel(std::size_t) override
    {
        modelLogged = modelUnlogged = 2;
    }

    bool
    matchesModel() const override
    {
        return pm->readU64(logged) == modelLogged &&
               pm->readU64(unlogged) == modelUnlogged;
    }

    bool checkInvariants() const override { return true; }

  private:
    runtime::PersistentMemory *pm = nullptr;
    Addr logged = 0;
    Addr unlogged = 0;
    std::uint64_t modelLogged = 0;
    std::uint64_t modelUnlogged = 0;
};

} // namespace

TEST(CrashExplorer, CatchesUnloggedWrites)
{
    BuggyWorkload wl;
    const auto res = exploreCrashPoints(wl);
    EXPECT_FALSE(res.passed());
    EXPECT_GT(res.failures, 0u);
    ASSERT_FALSE(res.messages.empty());
    EXPECT_NE(res.messages.front().find("atomicity"), std::string::npos);
}

TEST(CrashExplorer, ParallelMatchesSequentialOnPassingWorkloads)
{
    // Per-op domain parallelism with reorder + torn exploration on:
    // every counter and message of the merged result must equal the
    // sequential explorer's, at any thread count.
    ExploreOptions opts;
    opts.reorderings = true;
    opts.windowDepth = 4;
    opts.tornWrites = true;
    for (const char *name : {"pm_array", "pm_queue"}) {
        const auto factory = workloadFactory(name);
        ASSERT_TRUE(factory) << name;
        auto wl = factory();
        const ExploreResult seq = exploreCrashPoints(*wl, opts);
        for (unsigned threads : {2u, 4u}) {
            const ExploreResult par =
                exploreCrashPointsParallel(factory, opts, threads);
            SCOPED_TRACE(std::string(name) + " threads=" +
                         std::to_string(threads));
            expectSameResult(seq, par);
            EXPECT_TRUE(par.passed());
        }
    }
}

TEST(CrashExplorer, ParallelMatchesSequentialOnAFailingWorkload)
{
    // The seeded misordered-undo bug: the parallel explorer must
    // find exactly the same violations (count AND messages) as the
    // sequential one -- the regression that would hide if per-op
    // replicas diverged from the committed-run state.
    ExploreOptions opts;
    opts.reorderings = true;
    opts.windowDepth = 4;
    const auto factory = workloadFactory("misordered_undo");
    ASSERT_TRUE(factory);
    auto wl = factory();
    const ExploreResult seq = exploreCrashPoints(*wl, opts);
    ASSERT_FALSE(seq.passed());
    const ExploreResult par =
        exploreCrashPointsParallel(factory, opts, 4);
    expectSameResult(seq, par);
    EXPECT_FALSE(par.passed());
}

TEST(CrashExplorer, ParallelSingleThreadFallsBackToSequential)
{
    const auto factory = workloadFactory("kv_store");
    ASSERT_TRUE(factory);
    auto wl = factory();
    const ExploreResult seq = exploreCrashPoints(*wl);
    const ExploreResult par =
        exploreCrashPointsParallel(factory, {}, 1);
    expectSameResult(seq, par);
}

TEST(CrashExplorer, WorkloadFactoryKnowsEveryName)
{
    for (const auto &wl : faultinject::makeAllWorkloads()) {
        const auto factory = workloadFactory(wl->name());
        ASSERT_TRUE(factory) << wl->name();
        auto fresh = factory();
        EXPECT_STREQ(fresh->name(), wl->name());
        EXPECT_EQ(fresh->numOps(), wl->numOps());
    }
    EXPECT_FALSE(workloadFactory("no_such_workload"));
}
