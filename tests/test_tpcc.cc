/**
 * @file
 * Unit tests for the TPC-C subset and the NEW_ORDER transaction.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pmds/tpcc.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::OrderLineReq;
using pmds::TpccConfig;
using pmds::TpccDb;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 25};
    VirtualOs os;
    TpccConfig cfg;
    TpccDb db;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy, 1 << 17};

    Harness() : cfg(makeCfg()), db(pm, cfg) {}

    static TpccConfig
    makeCfg()
    {
        TpccConfig c;
        c.districts = 10;
        c.customersPerDistrict = 16;
        c.items = 128;
        c.maxOrders = 1 << 14;
        return c;
    }

    std::uint64_t
    newOrder(unsigned d, unsigned c,
             const std::vector<OrderLineReq> &lines)
    {
        std::uint64_t o_id = 0;
        rt.runFase(0, [&](Transaction &tx) {
            o_id = db.newOrder(tx, d, c, lines);
        });
        return o_id;
    }
};

std::vector<OrderLineReq>
lines(std::initializer_list<std::pair<unsigned, unsigned>> reqs)
{
    std::vector<OrderLineReq> out;
    for (auto [item, qty] : reqs)
        out.push_back(OrderLineReq{item, qty});
    return out;
}

} // namespace

TEST(Tpcc, FreshDatabaseIsConsistent)
{
    Harness h;
    EXPECT_EQ(h.db.ordersPlaced(), 0u);
    EXPECT_EQ(h.db.nextOrderId(0), 1u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Tpcc, NewOrderAssignsSequentialIds)
{
    Harness h;
    auto l = lines({{1, 2}, {2, 1}, {3, 1}, {4, 1}, {5, 1}});
    EXPECT_EQ(h.newOrder(0, 0, l), 1u);
    EXPECT_EQ(h.newOrder(0, 0, l), 2u);
    EXPECT_EQ(h.newOrder(1, 0, l), 1u); // districts are independent
    EXPECT_EQ(h.db.ordersPlaced(), 3u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Tpcc, StockDecreasesByOrderedQuantity)
{
    Harness h;
    const auto before = h.db.totalStock();
    h.newOrder(0, 0, lines({{1, 3}, {2, 4}, {3, 1}, {4, 1}, {5, 1}}));
    EXPECT_EQ(h.db.totalStock(), before - 10);
}

TEST(Tpcc, StockReplenishesNearZero)
{
    // TPC-C: when quantity would drop below 10, add 91.
    Harness h;
    auto l = lines({{7, 9}, {1, 1}, {2, 1}, {3, 1}, {4, 1}});
    // Item 7 starts at 10000; order 9 units 1110 times to approach 10.
    for (int i = 0; i < 1110; ++i)
        h.newOrder(0, 0, l);
    EXPECT_TRUE(h.db.checkInvariants());
    // Total stock stays positive thanks to replenishment.
    EXPECT_GT(h.db.totalStock(), 0u);
}

TEST(Tpcc, AbortedNewOrderRollsBackEverything)
{
    Harness h;
    const auto stock = h.db.totalStock();
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.db.newOrder(tx, 2, 3,
                          {{1, 2}, {2, 2}, {3, 2}, {4, 2}, {5, 2}});
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.db.ordersPlaced(), 0u);
    EXPECT_EQ(h.db.nextOrderId(2), 1u);
    EXPECT_EQ(h.db.totalStock(), stock);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Tpcc, RandomLinesAreWellFormed)
{
    Harness h;
    Rng rng(37);
    for (int i = 0; i < 100; ++i) {
        auto l = h.db.randomLines(rng);
        ASSERT_GE(l.size(), 5u);
        ASSERT_LE(l.size(), 15u);
        for (const auto &req : l) {
            ASSERT_LT(req.itemId, h.cfg.items);
            ASSERT_GE(req.quantity, 1u);
            ASSERT_LE(req.quantity, 10u);
        }
    }
}

TEST(Tpcc, ManyRandomOrdersKeepInvariants)
{
    Harness h;
    Rng rng(41);
    for (int i = 0; i < 300; ++i) {
        const auto d = static_cast<unsigned>(rng.below(10));
        const auto c = static_cast<unsigned>(rng.below(16));
        h.newOrder(d, c, h.db.randomLines(rng));
    }
    EXPECT_EQ(h.db.ordersPlaced(), 300u);
    EXPECT_TRUE(h.db.checkInvariants());
}
