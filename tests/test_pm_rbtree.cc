/**
 * @file
 * Unit and property tests for the persistent red-black tree:
 * model-checked against std::map with the full red-black invariants
 * verified after every operation of a randomised sweep.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "pmds/pm_rbtree.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::PmRbTree;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 23};
    VirtualOs os;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy, 1 << 17};
    PmRbTree tree{pm};

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        rt.runFase(0, [&](Transaction &tx) { tree.insert(tx, k, v); });
    }

    bool
    erase(std::uint64_t k)
    {
        bool out = false;
        rt.runFase(0,
                   [&](Transaction &tx) { out = tree.erase(tx, k); });
        return out;
    }

    std::optional<std::uint64_t>
    find(std::uint64_t k)
    {
        std::optional<std::uint64_t> out;
        rt.runFase(0,
                   [&](Transaction &tx) { out = tree.find(tx, k); });
        return out;
    }
};

} // namespace

TEST(PmRbTree, EmptyTreeProperties)
{
    Harness h;
    EXPECT_EQ(h.tree.size(), 0u);
    EXPECT_TRUE(h.tree.checkInvariants());
    EXPECT_FALSE(h.find(1).has_value());
}

TEST(PmRbTree, InsertFindSingle)
{
    Harness h;
    h.insert(10, 100);
    EXPECT_EQ(h.find(10), 100u);
    EXPECT_EQ(h.tree.lookup(10), 100u);
    EXPECT_EQ(h.tree.size(), 1u);
    EXPECT_TRUE(h.tree.checkInvariants());
}

TEST(PmRbTree, InsertUpdatesInPlace)
{
    Harness h;
    h.insert(10, 100);
    h.insert(10, 200);
    EXPECT_EQ(h.find(10), 200u);
    EXPECT_EQ(h.tree.size(), 1u);
}

TEST(PmRbTree, AscendingInsertionStaysBalanced)
{
    Harness h;
    for (std::uint64_t k = 1; k <= 256; ++k) {
        h.insert(k, k);
        ASSERT_TRUE(h.tree.checkInvariants()) << "at key " << k;
    }
    EXPECT_EQ(h.tree.size(), 256u);
}

TEST(PmRbTree, DescendingInsertionStaysBalanced)
{
    Harness h;
    for (std::uint64_t k = 256; k >= 1; --k) {
        h.insert(k, k);
        ASSERT_TRUE(h.tree.checkInvariants());
    }
    EXPECT_EQ(h.tree.size(), 256u);
}

TEST(PmRbTree, EraseMissingReturnsFalse)
{
    Harness h;
    h.insert(5, 5);
    EXPECT_FALSE(h.erase(7));
    EXPECT_EQ(h.tree.size(), 1u);
}

TEST(PmRbTree, EraseLeafRootAndInternal)
{
    Harness h;
    for (std::uint64_t k : {50u, 25u, 75u, 10u, 30u, 60u, 90u})
        h.insert(k, k);
    EXPECT_TRUE(h.erase(10)); // leaf
    EXPECT_TRUE(h.tree.checkInvariants());
    EXPECT_TRUE(h.erase(50)); // root-ish internal, two children
    EXPECT_TRUE(h.tree.checkInvariants());
    EXPECT_TRUE(h.erase(25));
    EXPECT_TRUE(h.tree.checkInvariants());
    EXPECT_EQ(h.tree.size(), 4u);
}

TEST(PmRbTree, DrainToEmptyAndReuse)
{
    Harness h;
    for (std::uint64_t k = 1; k <= 32; ++k)
        h.insert(k, k);
    for (std::uint64_t k = 1; k <= 32; ++k) {
        ASSERT_TRUE(h.erase(k));
        ASSERT_TRUE(h.tree.checkInvariants());
    }
    EXPECT_EQ(h.tree.size(), 0u);
    h.insert(99, 99);
    EXPECT_EQ(h.find(99), 99u);
}

TEST(PmRbTree, ModelCheckRandomisedOps)
{
    Harness h;
    std::map<std::uint64_t, std::uint64_t> model;
    Rng rng(29);
    for (int op = 0; op < 1200; ++op) {
        const std::uint64_t k = 1 + rng.below(200);
        const double dice = rng.uniform();
        if (dice < 0.5) {
            const std::uint64_t v = rng.next();
            h.insert(k, v);
            model[k] = v;
        } else if (dice < 0.75) {
            ASSERT_EQ(h.erase(k), model.erase(k) > 0);
        } else {
            auto got = h.find(k);
            auto it = model.find(k);
            if (it == model.end()) {
                ASSERT_FALSE(got.has_value());
            } else {
                ASSERT_EQ(got, it->second);
            }
        }
        if (op % 50 == 0) {
            ASSERT_TRUE(h.tree.checkInvariants()) << "op " << op;
        }
        ASSERT_EQ(h.tree.size(), model.size());
    }
    EXPECT_TRUE(h.tree.checkInvariants());
}

TEST(PmRbTree, AbortedInsertRollsBack)
{
    Harness h;
    for (std::uint64_t k = 1; k <= 16; ++k)
        h.insert(k * 10, k);
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            // This insert triggers recolouring/rotation churn.
            h.tree.insert(tx, 55, 55);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_FALSE(h.tree.lookup(55).has_value());
    EXPECT_EQ(h.tree.size(), 16u);
    EXPECT_TRUE(h.tree.checkInvariants());
}

TEST(PmRbTree, AbortedEraseRollsBack)
{
    Harness h;
    for (std::uint64_t k = 1; k <= 16; ++k)
        h.insert(k, k);
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.tree.erase(tx, 8);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.tree.lookup(8), 8u);
    EXPECT_EQ(h.tree.size(), 16u);
    EXPECT_TRUE(h.tree.checkInvariants());
}

class RbTreeSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RbTreeSeeds, InvariantsSurviveChurn)
{
    Harness h;
    Rng rng(GetParam());
    std::map<std::uint64_t, std::uint64_t> model;
    for (int op = 0; op < 400; ++op) {
        const std::uint64_t k = 1 + rng.below(64);
        if (rng.chance(0.55)) {
            h.insert(k, op);
            model[k] = static_cast<std::uint64_t>(op);
        } else {
            h.erase(k);
            model.erase(k);
        }
    }
    EXPECT_TRUE(h.tree.checkInvariants());
    EXPECT_EQ(h.tree.size(), model.size());
    for (const auto &[k, v] : model)
        ASSERT_EQ(h.tree.lookup(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));
