/**
 * @file
 * Integration tests for the memory system: miss chains, MSHR merging,
 * coherence invalidation, design-specific eviction/flush handling.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using mem::MemConfig;
using mem::MemorySystem;
using persistency::Design;
using sim::EventQueue;

namespace
{

struct Harness
{
    EventQueue eq;
    StatGroup stats{"test"};
    MemorySystem mem;

    explicit Harness(Design d, MemConfig cfg = smallConfig())
        : mem(eq, &stats, cfg, d)
    {
    }

    static MemConfig
    smallConfig()
    {
        MemConfig cfg;
        cfg.numCores = 2;
        cfg.l1Bytes = 4 * 1024;
        cfg.llcBytes = 64 * 1024;
        return cfg;
    }

    Tick
    timeLoad(CoreId c, Addr a)
    {
        Tick done = ~Tick{0};
        mem.load(c, a, [&] { done = eq.now(); });
        eq.run();
        return done;
    }

    Tick
    timeStore(CoreId c, Addr a)
    {
        Tick done = ~Tick{0};
        mem.store(c, a, std::nullopt, [&] { done = eq.now(); });
        eq.run();
        return done;
    }
};

} // namespace

TEST(MemorySystem, ColdLoadTraversesTheWholeHierarchy)
{
    Harness h(Design::IntelX86);
    EXPECT_EQ(h.timeLoad(0, 0x10000), nsToTicks(2 + 20 + 175));
    EXPECT_EQ(h.mem.pmc().reads.value(), 1u);
}

TEST(MemorySystem, L1HitIsTwoNanoseconds)
{
    Harness h(Design::IntelX86);
    h.timeLoad(0, 0x10000);
    const Tick start = h.eq.now();
    EXPECT_EQ(h.timeLoad(0, 0x10000) - start, nsToTicks(2));
}

TEST(MemorySystem, LlcHitServesRemoteCoreMisses)
{
    Harness h(Design::IntelX86);
    h.timeLoad(0, 0x10000); // fills LLC
    const Tick start = h.eq.now();
    EXPECT_EQ(h.timeLoad(1, 0x10000) - start, nsToTicks(2 + 20));
    EXPECT_EQ(h.mem.pmc().reads.value(), 1u);
}

TEST(MemorySystem, MshrMergesConcurrentMisses)
{
    Harness h(Design::IntelX86);
    int done = 0;
    h.mem.load(0, 0x10000, [&] { ++done; });
    h.mem.load(0, 0x10000, [&] { ++done; });
    h.mem.load(0, 0x10008, [&] { ++done; }); // same block
    h.eq.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(h.mem.pmc().reads.value(), 1u);
}

TEST(MemorySystem, StoreHitDirtiesL1)
{
    Harness h(Design::IntelX86);
    h.timeLoad(0, 0x10000);
    h.timeStore(0, 0x10000);
    EXPECT_TRUE(h.mem.l1(0).isDirty(blockAlign(0x10000)));
}

TEST(MemorySystem, StoreMissWriteAllocates)
{
    Harness h(Design::IntelX86);
    h.timeStore(0, 0x10000);
    EXPECT_TRUE(h.mem.l1(0).contains(blockAlign(0x10000)));
    EXPECT_EQ(h.mem.storeAllocFetches.value(), 1u);
}

TEST(MemorySystem, StoresInvalidateRemoteL1Copies)
{
    Harness h(Design::IntelX86);
    h.timeLoad(0, 0x10000);
    h.timeLoad(1, 0x10000);
    EXPECT_TRUE(h.mem.l1(1).contains(blockAlign(0x10000)));
    h.timeStore(0, 0x10000);
    EXPECT_FALSE(h.mem.l1(1).contains(blockAlign(0x10000)));
    EXPECT_EQ(h.mem.coherenceInvalidations.value(), 1u);
}

TEST(MemorySystem, PmemSpecStoresEnterThePersistPath)
{
    Harness h(Design::PmemSpec);
    h.timeStore(0, 0x10000);
    EXPECT_EQ(h.mem.path(0).sends.value(), 1u);
    EXPECT_EQ(h.mem.pmc().persistsAccepted.value(), 1u);
}

TEST(MemorySystem, BufferedStoresEnterThePersistBuffer)
{
    for (Design d : {Design::HOPS, Design::DPO}) {
        Harness h(d);
        h.timeStore(0, 0x10000);
        EXPECT_EQ(h.mem.pbuf(0).appends.value(), 1u);
    }
}

TEST(MemorySystem, IntelStoresBypassPersistMachinery)
{
    Harness h(Design::IntelX86);
    h.timeStore(0, 0x10000);
    EXPECT_EQ(h.mem.pmc().persistsAccepted.value(), 0u);
}

TEST(MemorySystem, ClwbFlushesDirtyBlockToPmc)
{
    Harness h(Design::IntelX86);
    h.timeStore(0, 0x10000);
    Tick done = 0;
    h.mem.clwb(0, 0x10000, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(h.mem.pmc().writes.value(), 1u);
    EXPECT_FALSE(h.mem.l1(0).isDirty(blockAlign(0x10000)));
}

TEST(MemorySystem, ClwbOfCleanBlockIsCheap)
{
    Harness h(Design::IntelX86);
    h.timeLoad(0, 0x10000);
    Tick start = h.eq.now();
    Tick done = 0;
    h.mem.clwb(0, 0x10000, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(done - start, nsToTicks(2));
    EXPECT_EQ(h.mem.pmc().writes.value(), 0u);
}

TEST(MemorySystem, DpoClwbIsANoop)
{
    Harness h(Design::DPO);
    h.timeStore(0, 0x10000);
    h.mem.clwb(0, 0x10000, [] {});
    h.eq.run();
    EXPECT_EQ(h.mem.pmc().writes.value(),
              h.mem.pbuf(0).persistsDone.value());
}

TEST(MemorySystem, SpecBarrierCompletesAfterPathDrain)
{
    Harness h(Design::PmemSpec);
    h.timeStore(0, 0x10000);
    Tick done = 0;
    h.mem.specBarrier(0, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_TRUE(h.mem.path(0).empty());
}

TEST(MemorySystem, LlcEvictionsDroppedUnderPmemSpec)
{
    // Thrash a small LLC with dirty blocks; evictions must be dropped
    // (no PMC writes) but reported to the speculation buffer.
    MemConfig cfg = Harness::smallConfig();
    cfg.llcBytes = 2 * 1024; // 32 blocks
    cfg.l1Bytes = 1024;      // 16 blocks
    Harness h(Design::PmemSpec, cfg);
    for (Addr a = 0; a < 64; ++a)
        h.timeStore(0, 0x10000 + a * 64);
    EXPECT_GT(h.mem.pmc().droppedWritebacks.value(), 0u);
    // Every PMC write came from the persist path, not evictions.
    EXPECT_EQ(h.mem.pmc().writes.value() +
                  h.mem.pmc().writeCoalesces.value(),
              h.mem.pmc().persistsAccepted.value());
}

TEST(MemorySystem, IntelLlcEvictionsWriteBack)
{
    MemConfig cfg = Harness::smallConfig();
    cfg.llcBytes = 2 * 1024;
    cfg.l1Bytes = 1024;
    Harness h(Design::IntelX86, cfg);
    for (Addr a = 0; a < 64; ++a)
        h.timeStore(0, 0x10000 + a * 64);
    EXPECT_GT(h.mem.pmc().writes.value(), 0u);
    EXPECT_EQ(h.mem.pmc().droppedWritebacks.value(), 0u);
}

TEST(MemorySystem, LockWatermarksCreateBufferDependencies)
{
    Harness h(Design::HOPS);
    // Core 0 buffers a store, releases a lock; core 1 acquires and
    // buffers its own store: core 1's drain must follow core 0's.
    h.mem.store(0, 0x10000, std::nullopt, [] {});
    h.mem.onLockRelease(0, 7);
    h.mem.onLockAcquire(1, 7);
    h.mem.store(1, 0x20000, std::nullopt, [] {});
    h.eq.run();
    // Both drained; no deadlock, and the dependency was recorded
    // (depStalls may be zero if timing already satisfied it).
    EXPECT_EQ(h.mem.pbuf(0).persistsDone.value(), 1u);
    EXPECT_EQ(h.mem.pbuf(1).persistsDone.value(), 1u);
}

TEST(MemorySystem, HopsStickyMExtraLatency)
{
    MemConfig cfg = Harness::smallConfig();
    cfg.l1ToLlcExtra = nsToTicks(1);
    Harness h(Design::HOPS, cfg);
    EXPECT_EQ(h.timeLoad(0, 0x10000),
              nsToTicks(2 + 1 + 20) + cfg.bloomLookupLatency +
                  nsToTicks(175));
}
