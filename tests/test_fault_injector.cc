/**
 * @file
 * Tests for the fault-injection subsystem: misspeculation injection
 * through the real speculation buffer -> VirtualOs -> FaseRuntime
 * trap chain under both recovery policies, benign persist delays,
 * power cuts (including a crash *during* recovery), and the
 * timing-layer persist-path delay hook.
 */

#include <gtest/gtest.h>

#include <memory>

#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "mem/persist_path.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using faultinject::AddrTouchPlan;
using faultinject::FaultInjector;
using faultinject::FaultKind;
using faultinject::NthAccessPlan;
using faultinject::PowerCutPlan;
using faultinject::PowerFailure;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 20};
    VirtualOs os;
    FaseRuntime rt;
    FaultInjector inj;
    Addr data;

    explicit Harness(RecoveryPolicy policy = RecoveryPolicy::Lazy)
        : rt(pm, os, 1, policy), inj(pm, os), data(pm.alloc(256, 64))
    {
        for (Addr a = data; a < data + 256; a += 8)
            pm.writeU64(a, 1);
        pm.persistAll();
        // Attach only after setup so the seed writes are invisible
        // to armed plans.
        inj.attach();
    }
};

} // namespace

TEST(FaultInjector, LoadStaleTrapsThroughOsAndReexecutesLazily)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::LoadStale, h.data));

    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 42);
    });

    // The buffer detected the stale load, the OS relayed it, the
    // runtime aborted once and re-executed to commit.
    EXPECT_EQ(h.inj.loadStalesInjected(), 1u);
    EXPECT_EQ(h.inj.interruptsRaised(), 1u);
    EXPECT_EQ(h.os.delivered(), 1u);
    EXPECT_EQ(h.inj.specBuffer().loadMisspecs.value(), 1u);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.pm.readU64(h.data), 42u);
    EXPECT_EQ(h.pm.inFlightCount(), 0u);
}

TEST(FaultInjector, LoadStaleUnderEagerAbortsAtNextPoll)
{
    Harness h(RecoveryPolicy::Eager);
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::LoadStale, h.data));

    int runs = 0;
    bool past_second_write = false;
    h.rt.runFase(0, [&](Transaction &tx) {
        ++runs;
        tx.writeU64(h.data, 7); // fault fires inside this access
        tx.writeU64(h.data + 8, 8); // first attempt aborts here
        if (runs == 1)
            past_second_write = true;
    });

    EXPECT_EQ(runs, 2);
    EXPECT_FALSE(past_second_write);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.pm.readU64(h.data), 7u);
    EXPECT_EQ(h.pm.readU64(h.data + 8), 8u);
}

TEST(FaultInjector, StoreWawTrapsThroughOs)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::StoreWaw, h.data));

    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 21);
    });

    EXPECT_EQ(h.inj.storeWawsInjected(), 1u);
    EXPECT_EQ(h.inj.interruptsRaised(), 1u);
    EXPECT_EQ(h.inj.specBuffer().storeMisspecs.value(), 1u);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.pm.readU64(h.data), 21u);
}

TEST(FaultInjector, StoreWawUnderEagerAbortsAtNextPoll)
{
    Harness h(RecoveryPolicy::Eager);
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::StoreWaw, h.data));

    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        ++runs;
        tx.writeU64(h.data, 31);
        tx.writeU64(h.data + 8, 32); // first attempt aborts here
    });

    EXPECT_EQ(runs, 2);
    EXPECT_EQ(h.inj.storeWawsInjected(), 1u);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
    EXPECT_EQ(h.pm.readU64(h.data), 31u);
    EXPECT_EQ(h.pm.readU64(h.data + 8), 32u);
}

TEST(FaultInjector, DelayedPersistAloneIsBenign)
{
    Harness h;
    // A persist held back with no racing PM read must not trap
    // (Section 5.1: only the WriteBack-Read-Persist pattern does).
    h.inj.addPlan(std::make_unique<NthAccessPlan>(
        FaultKind::PersistDelay, 1, nsToTicks(100)));

    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 13);
    });

    EXPECT_EQ(h.inj.persistDelaysInjected(), 1u);
    EXPECT_EQ(h.inj.interruptsRaised(), 0u);
    EXPECT_EQ(h.os.delivered(), 0u);
    EXPECT_EQ(h.rt.fasesAborted(), 0u);
    EXPECT_EQ(h.rt.fasesCommitted(), 1u);
}

TEST(FaultInjector, PowerCutUnwindsAndRecoveryRestoresPreState)
{
    Harness h;
    h.inj.addPlan(std::make_unique<PowerCutPlan>(3));

    EXPECT_THROW(h.rt.runFase(0,
                              [&](Transaction &tx) {
                                  tx.writeU64(h.data, 50);
                                  tx.writeU64(h.data + 64, 51);
                                  tx.writeU64(h.data + 128, 52);
                              }),
                 PowerFailure);
    EXPECT_FALSE(h.rt.inFase(0));
    EXPECT_EQ(h.inj.powerCutsInjected(), 1u);

    h.inj.clearPlans();
    h.rt.recoverAll();
    EXPECT_EQ(h.pm.readU64(h.data), 1u);
    EXPECT_EQ(h.pm.readU64(h.data + 64), 1u);
    EXPECT_EQ(h.pm.readU64(h.data + 128), 1u);
}

TEST(FaultInjector, CrashDuringRecoveryIsIdempotent)
{
    // A second power failure in the middle of recovery must leave a
    // state from which recovery still restores the pre-FASE image:
    // undo replay is idempotent, so any durable prefix of recovery's
    // own persist stream is a valid starting point.
    for (std::size_t first_cut = 2; first_cut <= 8; ++first_cut) {
        for (std::size_t second_cut = 0; second_cut <= 3;
             ++second_cut) {
            Harness h;
            h.inj.addPlan(std::make_unique<PowerCutPlan>(first_cut));
            EXPECT_THROW(
                h.rt.runFase(0,
                             [&](Transaction &tx) {
                                 tx.writeU64(h.data, 60);
                                 tx.writeU64(h.data + 64, 61);
                                 tx.writeU64(h.data + 128, 62);
                             }),
                PowerFailure);

            // Crash again part-way through the recovery writes.
            h.inj.clearPlans();
            h.inj.addPlan(
                std::make_unique<PowerCutPlan>(second_cut));
            try {
                h.rt.recoverAll();
            } catch (const PowerFailure &) {
            }
            h.inj.clearPlans();
            h.rt.recoverAll(); // the reboot's recovery pass

            EXPECT_EQ(h.pm.readU64(h.data), 1u)
                << "cuts " << first_cut << "/" << second_cut;
            EXPECT_EQ(h.pm.readU64(h.data + 64), 1u);
            EXPECT_EQ(h.pm.readU64(h.data + 128), 1u);
            h.pm.persistAll();
            // And another recovery pass stays a no-op.
            h.rt.recoverAll();
            EXPECT_EQ(h.pm.readU64(h.data), 1u);
        }
    }
}

TEST(FaultInjector, PlansFireAtMostOnce)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::LoadStale, h.data));
    for (int i = 0; i < 3; ++i) {
        h.rt.runFase(0, [&](Transaction &tx) {
            tx.writeU64(h.data, 100 + i);
        });
    }
    EXPECT_EQ(h.inj.loadStalesInjected(), 1u);
    EXPECT_EQ(h.rt.fasesAborted(), 1u);
    EXPECT_EQ(h.rt.fasesCommitted(), 3u);
}

TEST(FaultInjector, DetachStopsInjection)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::LoadStale, h.data));
    h.inj.detach();
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 5);
    });
    EXPECT_EQ(h.inj.loadStalesInjected(), 0u);
    EXPECT_EQ(h.rt.fasesAborted(), 0u);
}

TEST(FaultInjector, TornWriteCutsPowerWithATornFrontier)
{
    Harness h;
    // The third persist of the FASE below is the 64-byte undo-log
    // payload... but the plan does not need to know that: it tears
    // whatever persist sits at the frontier of prefix 0 -- here the
    // first log payload write (8 words wide). Keep only its first
    // word durable.
    h.inj.addPlan(std::make_unique<faultinject::TornWritePlan>(0, 0x1));

    bool torn = false;
    std::size_t frontier_words = 0;
    try {
        h.rt.runFase(0, [&](Transaction &tx) {
            tx.writeU64(h.data, 70);
        });
        FAIL() << "expected PowerFailure";
    } catch (const PowerFailure &pf) {
        torn = pf.torn;
        frontier_words = pf.frontierWords;
        EXPECT_EQ(pf.durablePrefix, 0u);
    }
    EXPECT_TRUE(torn);
    EXPECT_EQ(frontier_words, 8u) << "64-byte log payload = 8 words";
    EXPECT_EQ(h.inj.tornWritesInjected(), 1u);

    // The torn residue is frontier garbage the checksummed log must
    // discard; the data itself never changed.
    h.inj.clearPlans();
    const auto rep = h.rt.recoverAll();
    EXPECT_TRUE(rep.consistent);
    EXPECT_EQ(h.pm.readU64(h.data), 1u);
}

TEST(FaultInjector, BitFlipIsSilentUntilRecoveryVerifies)
{
    Harness h;
    // Flip a bit in the undo log's first counted payload word right
    // after it is written (access 1 = the payload pm.write).
    const auto [log_base, log_bytes] = h.rt.logRegion(0);
    (void)log_bytes;
    h.inj.addPlan(std::make_unique<AddrTouchPlan>(
        FaultKind::BitFlip, log_base + 16 + 32, 0, 0x1));

    // The FASE runs to commit: bit rot raises no trap, no abort.
    h.rt.runFase(0, [&](Transaction &tx) {
        tx.writeU64(h.data, 80);
    });
    EXPECT_EQ(h.inj.bitFlipsInjected(), 1u);
    EXPECT_EQ(h.inj.interruptsRaised(), 0u);
    EXPECT_EQ(h.rt.fasesAborted(), 0u);
    EXPECT_EQ(h.pm.readU64(h.data), 80u);
}

TEST(FaultInjector, BitFlipInCountedEntryEscalatesOnRecovery)
{
    Harness h;
    const auto [log_base, log_bytes] = h.rt.logRegion(0);
    (void)log_bytes;
    // Cut power mid-FASE with the entry counted, then rot it: the
    // reboot's recovery must refuse, not replay garbage.
    h.inj.addPlan(std::make_unique<PowerCutPlan>(6));
    EXPECT_THROW(h.rt.runFase(0,
                              [&](Transaction &tx) {
                                  tx.writeU64(h.data, 90);
                              }),
                 PowerFailure);
    h.inj.clearPlans();
    h.inj.injectBitFlip(log_base + 16 + 32, 0x2);
    EXPECT_EQ(h.inj.bitFlipsInjected(), 1u);
    EXPECT_THROW(h.rt.recoverAll(), runtime::UnrecoverableCorruption);
    EXPECT_FALSE(h.rt.lastRecoveryReport().consistent);
}

TEST(FaultInjector, PoisonPlanMakesReadsThrowMediaError)
{
    Harness h;
    h.inj.addPlan(std::make_unique<AddrTouchPlan>(
        FaultKind::Poison, h.data + 64));

    // Poison alone is not a trap: the plan fires on the first touch
    // of the block (after the access applied) and the damage only
    // surfaces at the next read of the word.
    h.pm.writeU64(h.data + 64, 3);
    EXPECT_EQ(h.inj.poisonsInjected(), 1u);
    EXPECT_EQ(h.inj.interruptsRaised(), 0u);
    EXPECT_THROW(h.pm.readU64(h.data + 64), runtime::MediaError);
    // A fresh full-word store remaps (heals) the line.
    h.pm.writeU64(h.data + 64, 4);
    EXPECT_EQ(h.pm.readU64(h.data + 64), 4u);
}

TEST(FaultInjector, PersistPathDelayHookPostponesArrival)
{
    // Timing-layer injection point: a hook on the decoupled
    // persist-path stretches one store's traversal.
    sim::EventQueue eq;
    StatGroup stats{"test"};
    std::vector<std::pair<Addr, Tick>> delivered;
    mem::PersistPath path(
        eq, &stats, 0, nsToTicks(20), 8,
        [&](CoreId, Addr a, std::optional<SpecId>) {
            delivered.emplace_back(a, eq.now());
            return true;
        });
    path.setDelayHook([](Addr a) {
        return blockAlign(a) == 0x1000 ? nsToTicks(30) : Tick{0};
    });

    path.send(0x1000, std::nullopt);
    eq.run();
    path.send(0x2000, std::nullopt);
    eq.run();

    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0].second, nsToTicks(50)); // 20 + 30 injected
    EXPECT_GE(delivered[1].second, nsToTicks(20)); // unhooked block
}
