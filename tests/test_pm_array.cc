/**
 * @file
 * Unit tests for the persistent array (Array Swaps substrate).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pmds/pm_array.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::PmArray;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 22};
    VirtualOs os;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy};
};

} // namespace

TEST(PmArray, InitAndGet)
{
    Harness h;
    PmArray arr(h.pm, 16);
    for (std::size_t i = 0; i < 16; ++i)
        arr.init(i, i * 10);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(arr.get(i), i * 10);
}

TEST(PmArray, ElementsAreDistinct)
{
    Harness h;
    PmArray arr(h.pm, 8, 64);
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_EQ(arr.elemAddr(i) - arr.elemAddr(i - 1), 64u);
}

TEST(PmArray, SwapExchangesFullElements)
{
    Harness h;
    PmArray arr(h.pm, 4, 64);
    arr.init(0, 111);
    arr.init(1, 222);
    h.rt.runFase(0, [&](Transaction &tx) { arr.swap(tx, 0, 1); });
    EXPECT_EQ(arr.get(0), 222u);
    EXPECT_EQ(arr.get(1), 111u);
}

TEST(PmArray, ChecksumInvariantUnderRandomSwaps)
{
    Harness h;
    PmArray arr(h.pm, 64, 64);
    for (std::size_t i = 0; i < 64; ++i)
        arr.init(i, i + 1);
    const auto sum = arr.checksum();
    Rng rng(5);
    for (int op = 0; op < 500; ++op) {
        std::size_t i = rng.below(64);
        std::size_t j = rng.below(64);
        h.rt.runFase(0,
                     [&](Transaction &tx) { arr.swap(tx, i, j); });
        ASSERT_EQ(arr.checksum(), sum);
    }
}

TEST(PmArray, PersistedChecksumMatchesAfterCommit)
{
    Harness h;
    PmArray arr(h.pm, 8, 64);
    for (std::size_t i = 0; i < 8; ++i)
        arr.init(i, i);
    h.pm.persistAll();
    h.rt.runFase(0, [&](Transaction &tx) { arr.swap(tx, 0, 7); });
    EXPECT_EQ(arr.persistedChecksum(), arr.checksum());
}

TEST(PmArray, AbortedSwapLeavesArrayIntact)
{
    Harness h;
    PmArray arr(h.pm, 4, 64);
    arr.init(0, 10);
    arr.init(1, 20);
    h.pm.persistAll();
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            arr.swap(tx, 0, 1);
            h.os.raiseMisspecInterrupt(arr.elemAddr(0));
        }
        // Second attempt does nothing.
    });
    EXPECT_EQ(arr.get(0), 10u);
    EXPECT_EQ(arr.get(1), 20u);
}

TEST(PmArray, SelfSwapIsIdentity)
{
    Harness h;
    PmArray arr(h.pm, 4, 64);
    arr.init(2, 99);
    h.rt.runFase(0, [&](Transaction &tx) { arr.swap(tx, 2, 2); });
    EXPECT_EQ(arr.get(2), 99u);
}

TEST(PmArray, OutOfBoundsPanics)
{
    Harness h;
    PmArray arr(h.pm, 4);
    EXPECT_DEATH(arr.get(4), "out of");
}
