/**
 * @file
 * Tests for the event-tracing layer: flag parsing, ring buffer
 * policies (drop-and-count in trace mode, overwrite in flight-recorder
 * mode), event formatting, the flight dump, the machine-level flight
 * recorder on a forced misspeculation trap, and both exporters
 * (Chrome trace-event JSON schema keys, binary log round trip).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "cpu/machine.hh"
#include "observe/binary_log.hh"
#include "observe/chrome_trace.hh"
#include "observe/trace_export.hh"

using namespace pmemspec;
using trace::Config;
using trace::Detail;
using trace::Event;
using trace::EventKind;
using trace::Manager;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "pmemspec_" + name;
}

/** Record n events with distinct addresses onto one core's ring. */
void
recordN(Manager &m, unsigned n, CoreId core = 0)
{
    for (unsigned i = 0; i < n; ++i)
        m.record(trace::FlagSpecBuffer, EventKind::SbWriteBack,
                 Tick{10} * (i + 1), core, Addr{0x1000} + i * blockBytes,
                 {.stateBefore = 0, .stateAfter = 1});
}

} // namespace

TEST(TraceFlags, ParseRoundTrip)
{
    std::uint32_t mask = 0;
    EXPECT_TRUE(trace::parseFlags("PersistPath,SpecBuffer", mask));
    EXPECT_EQ(mask, trace::FlagPersistPath | trace::FlagSpecBuffer);
    EXPECT_EQ(trace::flagsToString(mask), "PersistPath,SpecBuffer");

    EXPECT_TRUE(trace::parseFlags("all", mask));
    EXPECT_EQ(mask, trace::FlagAll);
    EXPECT_EQ(trace::flagsToString(mask), "all");

    // Every individual flag name round-trips through its own bit.
    for (unsigned bit = 0; bit < trace::numFlags; ++bit) {
        std::uint32_t one = 0;
        EXPECT_TRUE(trace::parseFlags(trace::flagName(bit), one));
        EXPECT_EQ(one, 1u << bit);
    }
}

TEST(TraceFlags, UnknownNameRejectedAndMaskUntouched)
{
    std::uint32_t mask = 0xdead;
    EXPECT_FALSE(trace::parseFlags("PersistPath,NoSuchFlag", mask));
    EXPECT_EQ(mask, 0xdeadu); // untouched on failure
}

TEST(TraceRing, TraceModeDropsAndCountsOnOverflow)
{
    Config cfg;
    cfg.flags = trace::FlagSpecBuffer;
    cfg.ringEntries = 4;
    Manager m(cfg, 1);

    recordN(m, 10);
    // Drop-newest policy: the first 4 events are retained, the other
    // 6 are counted as dropped (the checker refuses such a stream).
    EXPECT_EQ(m.recorded(), 4u);
    EXPECT_EQ(m.dropped(), 6u);
    const auto snap = m.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].seq, i);
        EXPECT_EQ(snap[i].addr, Addr{0x1000} + i * blockBytes);
    }
}

TEST(TraceRing, UncoredRingIsLargerInTraceMode)
{
    Config cfg;
    cfg.flags = trace::FlagPmController;
    cfg.ringEntries = 4;
    Manager m(cfg, 1);

    // The uncored ring (PMC and friends) gets 4x the per-core size.
    for (unsigned i = 0; i < 16; ++i)
        m.record(trace::FlagPmController, EventKind::PmcPersistAccept,
                 i, trace::kNoCore, 0x2000, {});
    EXPECT_EQ(m.recorded(), 16u);
    EXPECT_EQ(m.dropped(), 0u);
}

TEST(TraceRing, FlightModeOverwritesKeepingLastN)
{
    Config cfg;
    cfg.flightRecorder = true;
    cfg.flightEntries = 8;
    Manager m(cfg, 1);

    recordN(m, 20);
    // Overwrite policy: everything is recorded, nothing dropped, and
    // only the newest 8 events survive -- in record order.
    EXPECT_EQ(m.recorded(), 20u);
    EXPECT_EQ(m.dropped(), 0u);
    const auto snap = m.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    for (std::size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].seq, 12 + i);
    // The flight recorder listens to every component.
    EXPECT_TRUE(m.wants(trace::FlagFaultInject));
}

TEST(TraceRing, TailAndFormat)
{
    Config cfg;
    cfg.flags = trace::FlagSpecBuffer;
    Manager m(cfg, 1);
    recordN(m, 5);

    const auto last2 = m.tail(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_EQ(last2[0].seq, 3u);
    EXPECT_EQ(last2[1].seq, 4u);

    const std::string line = Manager::format(last2[1]);
    EXPECT_NE(line.find("SpecBuffer.SbWriteBack"), std::string::npos);
    EXPECT_NE(line.find("Initial->Evict"), std::string::npos);

    const auto lines = m.formatTail(2);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1], line);
}

TEST(TraceRing, DumpWritesFlightWindowAndRecordsMarker)
{
    Config cfg;
    cfg.flightRecorder = true;
    cfg.flightEntries = 16;
    Manager m(cfg, 1);
    m.meta.design = "PMEM-Spec";
    recordN(m, 3);

    const std::string path = tmpPath("dump.txt");
    std::FILE *f = std::fopen(path.c_str(), "w+");
    ASSERT_NE(f, nullptr);
    m.dump(f);
    std::fflush(f);
    std::rewind(f);
    std::string text(4096, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_NE(text.find("flight recorder: last 3"), std::string::npos);
    EXPECT_NE(text.find("(PMEM-Spec)"), std::string::npos);
    EXPECT_NE(text.find("SbWriteBack"), std::string::npos);
    // The dump leaves a marker event in the stream.
    const auto snap = m.snapshot();
    EXPECT_EQ(snap.back().kind, EventKind::FlightDump);
    EXPECT_EQ(snap.back().arg, 3u);
}

TEST(TraceFlight, MachineDumpsFlightWindowOnForcedMisspecTrap)
{
    // The Section 8.4 stale-read kernel with a pathological persist
    // path forces a genuine load misspeculation; with the flight
    // recorder on, the machine must have captured the automaton
    // transitions leading into the trap.
    cpu::MachineConfig cfg;
    cfg.design = persistency::Design::PmemSpec;
    cfg.mem.numCores = 1;
    cfg.mem.l1Bytes = 1024;
    cfg.mem.l1Ways = 1;
    cfg.mem.llcBytes = 4096;
    cfg.mem.llcWays = 1;
    cfg.mem.persistPathLatency = nsToTicks(2000);
    cfg.mem.speculationWindow = 4 * nsToTicks(2000);
    cfg.trace.flightRecorder = true;

    cpu::Machine m(cfg);
    cpu::Trace t;
    const Addr set_stride = 64 * blockBytes;
    const Addr victim = 50 * set_stride;
    t.push_back({cpu::TraceOp::Store, victim});
    for (unsigned i = 1; i <= 5; ++i)
        t.push_back({cpu::TraceOp::Store, i * set_stride});
    t.push_back({cpu::TraceOp::Compute, 3000});
    t.push_back({cpu::TraceOp::LoadDep, victim});
    std::vector<cpu::Trace> traces{std::move(t)};
    m.setTraces(std::move(traces));

    testing::internal::CaptureStderr();
    const auto r = m.run();
    const std::string err = testing::internal::GetCapturedStderr();

    ASSERT_GE(r.loadMisspecs, 1u);
    ASSERT_NE(m.traceManager(), nullptr);
    // The trap handler dumped the window to stderr...
    EXPECT_NE(err.find("flight recorder"), std::string::npos);
    EXPECT_NE(err.find("SbMisspec"), std::string::npos);
    // ...and the retained stream ends in trap-path events.
    bool saw_misspec = false, saw_trap = false, saw_dump = false;
    for (const Event &e : m.traceManager()->snapshot()) {
        saw_misspec |= e.kind == EventKind::SbMisspec;
        saw_trap |= e.kind == EventKind::OsTrap;
        saw_dump |= e.kind == EventKind::FlightDump;
    }
    EXPECT_TRUE(saw_misspec);
    EXPECT_TRUE(saw_trap);
    EXPECT_TRUE(saw_dump);
}

TEST(TraceExport, ChromeJsonCarriesDocumentedSchema)
{
    Config cfg;
    cfg.flags = trace::FlagSpecBuffer | trace::FlagPmController;
    Manager m(cfg, 2);
    m.meta.design = "PMEM-Spec";
    m.meta.flags = cfg.flags;
    m.meta.specWindow = nsToTicks(640);
    m.meta.specEntries = 16;
    m.meta.numCores = 2;
    m.meta.specAutomaton = true;
    m.record(trace::FlagSpecBuffer, EventKind::SbWriteBack,
             nsToTicks(5), 1, 0x1000,
             {.stateBefore = 0, .stateAfter = 1});
    m.record(trace::FlagPmController, EventKind::PmcPersistAccept,
             nsToTicks(7), trace::kNoCore, 0x1000,
             {.specId = 3, .unit = 0});

    const Json doc =
        observe::chromeTraceJson(m.snapshot(), m.meta, m.dropped());

    // Golden keys of the "pmemspec-trace-v1" schema (README).
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
    const Json *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    ASSERT_NE(other->find("schema"), nullptr);
    EXPECT_EQ(other->find("schema")->str(), "pmemspec-trace-v1");
    EXPECT_EQ(other->find("design")->str(), "PMEM-Spec");
    EXPECT_EQ(other->find("events")->uintValue(), 2u);
    EXPECT_EQ(other->find("dropped")->uintValue(), 0u);
    ASSERT_NE(other->find("specWindowTicks"), nullptr);
    ASSERT_NE(other->find("numCores"), nullptr);

    // Find the instant event rows (metadata rows use ph == "M").
    std::size_t instants = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &e = events->at(i);
        ASSERT_NE(e.find("ph"), nullptr);
        if (e.find("ph")->str() != "i")
            continue;
        ++instants;
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("cat"), nullptr);
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        ASSERT_NE(e.find("args"), nullptr);
        ASSERT_NE(e.find("args")->find("seq"), nullptr);
        ASSERT_NE(e.find("args")->find("addr"), nullptr);
    }
    EXPECT_EQ(instants, 2u);
}

TEST(TraceExport, BinaryLogRoundTrips)
{
    Config cfg;
    cfg.flags = trace::FlagSpecBuffer;
    Manager m(cfg, 1);
    m.meta.design = "PMEM-Spec";
    m.meta.flags = cfg.flags;
    m.meta.specWindow = 12345;
    m.meta.specEntries = 8;
    m.meta.numCores = 1;
    m.meta.specAutomaton = true;
    recordN(m, 6);

    const std::string path = tmpPath("roundtrip.bin");
    ASSERT_TRUE(observe::writeBinaryTrace(path, m.meta, m.snapshot(),
                                          m.dropped()));
    std::string err;
    auto bt = observe::readBinaryTrace(path, &err);
    std::remove(path.c_str());
    ASSERT_TRUE(bt.has_value()) << err;
    EXPECT_EQ(bt->meta.design, "PMEM-Spec");
    EXPECT_EQ(bt->meta.flags, m.meta.flags);
    EXPECT_EQ(bt->meta.specWindow, 12345u);
    EXPECT_EQ(bt->meta.specEntries, 8u);
    EXPECT_EQ(bt->meta.numCores, 1u);
    EXPECT_TRUE(bt->meta.specAutomaton);
    EXPECT_EQ(bt->dropped, 0u);
    EXPECT_EQ(bt->events, m.snapshot());
}

TEST(TraceExport, LabelledPathKeepsExtension)
{
    EXPECT_EQ(observe::tracePathWithLabel("out.json", "lat500"),
              "out.lat500.json");
    EXPECT_EQ(observe::tracePathWithLabel("out.bin", "a/b"),
              "out.a_b.bin");
    EXPECT_EQ(observe::tracePathWithLabel("out.json", ""), "out.json");
    EXPECT_EQ(observe::tracePathWithLabel("trace", "x"), "trace.x");
}
