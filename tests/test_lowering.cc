/**
 * @file
 * Unit tests for the per-design lowering pass: each design's
 * instruction mix must match the programming models of Figure 2.
 */

#include <gtest/gtest.h>

#include "persistency/lowering.hh"

using namespace pmemspec;
using namespace pmemspec::persistency;
using cpu::TraceOp;

namespace
{

/** A canonical one-FASE logical trace: log, boundary, data, end. */
LogicalTrace
canonicalFase()
{
    return {
        {EventKind::FaseBegin, 0, 0},
        {EventKind::LockAcq, 5, 0},
        {EventKind::LogWrite, 0x1000, 16},
        {EventKind::Boundary, 0, 0},
        {EventKind::DataStore, 0x2000, 16},
        {EventKind::FaseEnd, 0, 0},
        {EventKind::LockRel, 5, 0},
    };
}

} // namespace

TEST(Lowering, IntelX86UsesClwbAndSfence)
{
    auto t = lower(canonicalFase(), Design::IntelX86);
    auto mix = instrMix(t);
    EXPECT_EQ(mix.stores, 4u); // 32 bytes at 8B grain
    EXPECT_EQ(mix.clwbs, 2u);  // one dirty block per region
    EXPECT_EQ(mix.sfences, 2u); // boundary + FASE end
    EXPECT_EQ(mix.ofences, 0u);
    EXPECT_EQ(mix.dfences, 0u);
    EXPECT_EQ(mix.specBarriers, 0u);
}

TEST(Lowering, DpoRunsTheX86BinaryPlusBufferSemantics)
{
    auto t = lower(canonicalFase(), Design::DPO);
    auto mix = instrMix(t);
    EXPECT_EQ(mix.clwbs, 2u);
    EXPECT_EQ(mix.sfences, 2u);
    // Barriers become persist-ordering points, and commit durability
    // waits on the buffer.
    EXPECT_EQ(mix.ofences, 2u);
    EXPECT_EQ(mix.drainBuffers, 2u);
}

TEST(Lowering, HopsUsesOfenceAndDfence)
{
    auto t = lower(canonicalFase(), Design::HOPS);
    auto mix = instrMix(t);
    EXPECT_EQ(mix.clwbs, 0u);
    EXPECT_EQ(mix.sfences, 0u);
    EXPECT_EQ(mix.ofences, 1u); // log/data boundary
    EXPECT_EQ(mix.dfences, 1u); // FASE end
}

TEST(Lowering, PmemSpecNeedsOnlySpecBarrier)
{
    auto t = lower(canonicalFase(), Design::PmemSpec);
    auto mix = instrMix(t);
    EXPECT_EQ(mix.clwbs, 0u);
    EXPECT_EQ(mix.sfences, 0u);
    EXPECT_EQ(mix.ofences, 0u);
    EXPECT_EQ(mix.dfences, 0u);
    EXPECT_EQ(mix.specBarriers, 1u); // only at the FASE end
}

TEST(Lowering, PmemSpecInstrumentsCriticalSections)
{
    auto t = lower(canonicalFase(), Design::PmemSpec);
    // spec-assign right after the acquire, spec-revoke right before
    // the release (Section 5.2.2).
    bool saw_assign_after_acq = false;
    bool saw_revoke_before_rel = false;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].op == TraceOp::LockAcq &&
            t[i + 1].op == TraceOp::SpecAssign)
            saw_assign_after_acq = true;
        if (t[i].op == TraceOp::SpecRevoke &&
            t[i + 1].op == TraceOp::LockRel)
            saw_revoke_before_rel = true;
    }
    EXPECT_TRUE(saw_assign_after_acq);
    EXPECT_TRUE(saw_revoke_before_rel);
}

TEST(Lowering, OtherDesignsDoNotInstrumentLocks)
{
    for (Design d : {Design::IntelX86, Design::DPO, Design::HOPS}) {
        auto t = lower(canonicalFase(), d);
        EXPECT_EQ(cpu::countOps(t, TraceOp::SpecAssign), 0u);
        EXPECT_EQ(cpu::countOps(t, TraceOp::SpecRevoke), 0u);
    }
}

TEST(Lowering, BarrierPrecedesFaseEndMarker)
{
    // Durability must be ordered before the commit marker.
    for (Design d : {Design::IntelX86, Design::HOPS, Design::PmemSpec}) {
        auto t = lower(canonicalFase(), d);
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].op == TraceOp::FaseEnd) {
                ASSERT_GT(i, 0u);
                auto prev = t[i - 1].op;
                EXPECT_TRUE(prev == TraceOp::Sfence ||
                            prev == TraceOp::Dfence ||
                            prev == TraceOp::SpecBarrier ||
                            prev == TraceOp::DrainBuffer);
            }
        }
    }
}

TEST(Lowering, ClwbsCoverExactlyTheDirtyBlocks)
{
    LogicalTrace lt = {
        {EventKind::FaseBegin, 0, 0},
        // Two writes into the same block, one into another.
        {EventKind::DataStore, 0x1000, 8},
        {EventKind::DataStore, 0x1008, 8},
        {EventKind::DataStore, 0x2000, 8},
        {EventKind::FaseEnd, 0, 0},
    };
    auto t = lower(lt, Design::IntelX86);
    auto mix = instrMix(t);
    EXPECT_EQ(mix.clwbs, 2u); // blocks 0x1000 and 0x2000
}

TEST(Lowering, LoadsLowerToPerGrainInstructions)
{
    LogicalTrace lt = {
        {EventKind::PmLoad, 0x1000, 64},
        {EventKind::PmLoadDep, 0x2000, 16},
    };
    auto t = lower(lt, Design::PmemSpec);
    EXPECT_EQ(cpu::countOps(t, TraceOp::Load), 8u + 1u);
    // Only the first grain of a dependent read blocks.
    EXPECT_EQ(cpu::countOps(t, TraceOp::LoadDep), 1u);
}

TEST(Lowering, ComputeEventsPassThrough)
{
    LogicalTrace lt = {{EventKind::Compute, 120, 0}};
    auto t = lower(lt, Design::IntelX86);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].op, TraceOp::Compute);
    EXPECT_EQ(t[0].addr, 120u);
}

TEST(Lowering, ZeroCycleComputeIsElided)
{
    LogicalTrace lt = {{EventKind::Compute, 0, 0}};
    auto t = lower(lt, Design::IntelX86);
    EXPECT_TRUE(t.empty());
}

TEST(Lowering, StoreGrainIsConfigurable)
{
    LoweringOptions opts;
    opts.storeGrainBytes = 16;
    LogicalTrace lt = {{EventKind::DataStore, 0x1000, 64}};
    auto t = lower(lt, Design::PmemSpec, opts);
    EXPECT_EQ(cpu::countOps(t, TraceOp::Store), 4u);
}

TEST(Lowering, EmptyFaseStillGetsDurabilityBarrier)
{
    LogicalTrace lt = {
        {EventKind::FaseBegin, 0, 0},
        {EventKind::FaseEnd, 0, 0},
    };
    auto hops = instrMix(lower(lt, Design::HOPS));
    EXPECT_EQ(hops.dfences, 1u);
    auto spec = instrMix(lower(lt, Design::PmemSpec));
    EXPECT_EQ(spec.specBarriers, 1u);
}
