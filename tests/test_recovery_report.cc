/**
 * @file
 * Tests for the structured RecoveryReport and the fail-safe recovery
 * contract of FaseRuntime:
 *
 *  - recoverAll() reports exactly what it replayed/discarded and the
 *    result is stable under re-recovery (idempotency): a crash in the
 *    middle of recovery followed by another recovery ends in the same
 *    durable state as an uninterrupted recovery;
 *  - corruption in a counted log entry escalates to
 *    UnrecoverableCorruption carrying the same report -- recovery
 *    refuses rather than replaying garbage.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "common/trace.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using faultinject::FaultInjector;
using faultinject::PowerCutPlan;
using faultinject::PowerFailure;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::RecoveryReport;
using runtime::Transaction;
using runtime::UnrecoverableCorruption;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 20};
    runtime::VirtualOs os;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy, 1 << 14};
    FaultInjector inj{pm, os};
    Addr data;

    Harness() : data(pm.alloc(192, 64))
    {
        for (Addr a = data; a < data + 192; a += 8)
            pm.writeU64(a, 1);
        pm.persistAll();
        inj.attach();
    }

    /** The FASE under test: three logged block updates. */
    void
    fase(Transaction &tx)
    {
        tx.writeU64(data, 2);
        tx.writeU64(data + 64, 2);
        tx.writeU64(data + 128, 2);
    }

    /** Run the FASE with a power cut at persist prefix k.
     *  @return true if the cut fired (false: the FASE committed). */
    bool
    crashAt(std::size_t k)
    {
        inj.clearPlans();
        inj.addPlan(std::make_unique<PowerCutPlan>(k));
        bool crashed = false;
        try {
            rt.runFase(0, [this](Transaction &tx) { fase(tx); });
        } catch (const PowerFailure &) {
            crashed = true;
        }
        inj.clearPlans();
        return crashed;
    }
};

} // namespace

TEST(RecoveryReport, CleanRecoveryReportsReplayedEntries)
{
    Harness h;
    // Crash late enough that at least one log entry is counted.
    ASSERT_TRUE(h.crashAt(8));
    const RecoveryReport rep = h.rt.recoverAll();
    EXPECT_TRUE(rep.consistent);
    EXPECT_GE(rep.entriesReplayed, 1u);
    EXPECT_EQ(rep.entriesDiscardedCorrupt, 0u);
    EXPECT_EQ(rep.poisonedWordsQuarantined, 0u);
    EXPECT_TRUE(rep.diagnostics.empty());
    EXPECT_TRUE(rep == h.rt.lastRecoveryReport());
    // All-or-nothing: the FASE vanished.
    EXPECT_EQ(h.pm.readU64(h.data), 1u);
    EXPECT_EQ(h.pm.readU64(h.data + 64), 1u);
    EXPECT_EQ(h.pm.readU64(h.data + 128), 1u);
}

TEST(RecoveryReport, RecoveryAfterRecoveryIsANoOp)
{
    Harness h;
    ASSERT_TRUE(h.crashAt(8));
    h.rt.recoverAll();
    const RecoveryReport again = h.rt.recoverAll();
    EXPECT_TRUE(again.consistent);
    EXPECT_EQ(again.entriesReplayed, 0u);
    EXPECT_EQ(again.entriesDiscardedTorn, 0u);
    EXPECT_EQ(h.pm.readU64(h.data), 1u);
}

// Satellite (d): crash *during recovery*, recover again -- the final
// durable state matches an uninterrupted recovery, and re-running the
// same crash schedule reproduces the identical report (determinism).
TEST(RecoveryReport, RecoveryIsIdempotentUnderCrashes)
{
    Harness h;
    ASSERT_TRUE(h.crashAt(8));
    const auto crashed_state = h.pm.snapshot();

    // Reference: uninterrupted recovery from the crashed state.
    const RecoveryReport ref_report = h.rt.recoverAll();
    h.pm.persistAll();
    std::vector<std::uint8_t> ref_image(
        h.pm.persistedImage(), h.pm.persistedImage() + h.pm.size());

    // Now cut recovery's own persist stream at every prefix j. The
    // enumeration terminates the explorer's way: a plan that never
    // fires means recovery's stream fits in j persists.
    for (std::size_t j = 0;; ++j) {
        ASSERT_LT(j, std::size_t{1} << 12) << "did not converge";
        h.pm.restore(crashed_state);

        h.inj.clearPlans();
        h.inj.addPlan(std::make_unique<PowerCutPlan>(j));
        bool cut = false;
        RecoveryReport first;
        try {
            first = h.rt.recoverAll();
        } catch (const PowerFailure &) {
            cut = true;
        }
        h.inj.clearPlans();
        if (!cut)
            break; // recovery completed: every prefix explored

        // Second recovery must finish the job...
        const RecoveryReport second = h.rt.recoverAll();
        EXPECT_TRUE(second.consistent) << "cut at " << j;
        h.pm.persistAll();
        EXPECT_EQ(std::memcmp(h.pm.persistedImage(), ref_image.data(),
                              h.pm.size()),
                  0)
            << "durable state diverged after recovery cut at " << j;

        // ...and the whole schedule is deterministic: replaying
        // crash-at-j + recover yields the identical report.
        h.pm.restore(crashed_state);
        h.inj.addPlan(std::make_unique<PowerCutPlan>(j));
        try {
            h.rt.recoverAll();
            FAIL() << "cut at " << j << " fired once but not twice";
        } catch (const PowerFailure &) {
        }
        h.inj.clearPlans();
        const RecoveryReport replayed = h.rt.recoverAll();
        EXPECT_TRUE(replayed == second)
            << "recovery report not deterministic at cut " << j;

        // A cut before any replay persisted leaves the log intact,
        // so the re-recovery sees exactly the reference work.
        if (j == 0)
            EXPECT_TRUE(second == ref_report);
    }
}

TEST(RecoveryReport, CorruptCountedEntryEscalates)
{
    Harness h;
    ASSERT_TRUE(h.crashAt(8));
    // Rot the first counted entry's payload in thread 0's log.
    const auto [log_base, log_bytes] = h.rt.logRegion(0);
    (void)log_bytes;
    h.pm.corruptWord(log_base + 16 + 32, 0x1);

    try {
        h.rt.recoverAll();
        FAIL() << "expected UnrecoverableCorruption";
    } catch (const UnrecoverableCorruption &e) {
        EXPECT_FALSE(e.report.consistent);
        EXPECT_GE(e.report.entriesDiscardedCorrupt, 1u);
        EXPECT_EQ(e.report.entriesReplayed, 0u);
        ASSERT_FALSE(e.report.diagnostics.empty());
        EXPECT_NE(e.report.diagnostics.front().find("thread 0"),
                  std::string::npos)
            << e.report.diagnostics.front();
        EXPECT_TRUE(e.report == h.rt.lastRecoveryReport());
    }
    // Fail-safe: no partial replay reached the data.
    EXPECT_TRUE(h.pm.readU64(h.data) == 1u ||
                h.pm.readU64(h.data) == 2u);
}

// A misspeculation storm drives a FASE into its abort budget; the
// trap window captured at the *signal* must survive the budget
// exception and come back attached to the recoverAll() report -- the
// post-mortem must show what the hardware saw, not an empty window.
TEST(RecoveryReport, AbortBudgetKeepsTrapWindowThroughRecovery)
{
    PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy, 1 << 14);
    FaultInjector inj(pm, os);

    trace::Config tcfg;
    tcfg.flags = trace::FlagFaseRuntime | trace::FlagFaultInject;
    tcfg.flightRecorder = true;
    trace::Manager mgr(tcfg, 0);
    rt.setTraceManager(&mgr);
    inj.setTraceManager(&mgr);

    const Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 1);
    pm.persistAll();
    inj.attach();

    // Every 2nd access raises a LoadStale interrupt: the FASE can
    // never commit and must exhaust the (small) abort budget.
    rt.setAbortBudget(4);
    inj.addPlan(std::make_unique<faultinject::PeriodicPlan>(
        faultinject::FaultKind::LoadStale, 2, 1000));

    bool exhausted = false;
    try {
        rt.runFase(0, [&](Transaction &tx) { tx.writeU64(cell, 2); });
    } catch (const runtime::AbortBudgetExhausted &e) {
        exhausted = true;
        EXPECT_EQ(e.aborts, 4u);
    }
    ASSERT_TRUE(exhausted);
    inj.clearPlans();

    const RecoveryReport rep = rt.recoverAll();
    EXPECT_TRUE(rep.consistent);
    ASSERT_FALSE(rep.trapWindow.empty())
        << "trap window lost across AbortBudgetExhausted -> "
           "recoverAll";
    // The window is the formatted flight tail around the last trap;
    // it must actually mention the runtime trap event.
    bool mentions_trap = false;
    for (const auto &line : rep.trapWindow)
        mentions_trap = mentions_trap ||
                        line.find("RtTrap") != std::string::npos;
    EXPECT_TRUE(mentions_trap) << rep.trapWindow.front();
    EXPECT_TRUE(rep == rt.lastRecoveryReport());
    // The final attempt was rolled back before the throw and the
    // resync found nothing extra: the pre-FASE value stands.
    EXPECT_EQ(pm.readU64(cell), 1u);
}

TEST(RecoveryReport, MultiThreadReportsAggregate)
{
    PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    FaseRuntime rt(pm, os, 2, RecoveryPolicy::Lazy, 1 << 14);
    FaultInjector inj(pm, os);
    const Addr a = pm.alloc(128, 64);
    pm.writeU64(a, 1);
    pm.writeU64(a + 64, 1);
    pm.persistAll();
    inj.attach();

    // Thread 1 commits; thread 0 crashes mid-FASE afterwards.
    rt.runFase(1, [&](Transaction &tx) { tx.writeU64(a + 64, 5); });
    pm.persistAll();
    inj.addPlan(std::make_unique<PowerCutPlan>(6));
    try {
        rt.runFase(0, [&](Transaction &tx) { tx.writeU64(a, 5); });
        FAIL() << "expected PowerFailure";
    } catch (const PowerFailure &) {
    }
    inj.clearPlans();

    const RecoveryReport rep = rt.recoverAll();
    EXPECT_TRUE(rep.consistent);
    EXPECT_GE(rep.entriesReplayed, 1u);
    EXPECT_EQ(pm.readU64(a), 1u) << "thread 0's FASE rolled back";
    EXPECT_EQ(pm.readU64(a + 64), 5u) << "thread 1's commit survives";
}
