/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using sim::Clock;
using sim::EventQueue;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTicksRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.schedule(After{50}, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.schedule(After{1}, chain);
    };
    eq.schedule(After{1}, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.schedule(21, [&] { ++ran; });
    eq.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, BudgetedRunStopsEarly)
{
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(eq.executed(), 50u);
    EXPECT_TRUE(eq.run(1000));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(After{static_cast<Tick>(i)}, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, SameTickFifoAcrossCalendarDays)
{
    // FIFO must hold for equal ticks regardless of which bucket (or
    // the far heap) the events land in at insertion time.
    EventQueue eq;
    std::vector<int> order;
    const Tick far_tick = 5'000'000; // beyond the ring horizon
    for (int i = 0; i < 8; ++i)
        eq.schedule(far_tick, [&, i] { order.push_back(i); });
    eq.schedule(1, [&] { order.push_back(100); });
    for (int i = 8; i < 16; ++i)
        eq.schedule(far_tick, [&, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 17u);
    EXPECT_EQ(order[0], 100);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventQueue, FarFutureEventsMigrateInOrder)
{
    EventQueue eq;
    std::vector<Tick> at;
    // Spread events far beyond one ring span, in reverse order.
    for (int i = 9; i >= 0; --i)
        eq.schedule(static_cast<Tick>(i) * 3'000'000,
                    [&] { at.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(at.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(at[static_cast<std::size_t>(i)],
                  static_cast<Tick>(i) * 3'000'000);
}

TEST(EventQueue, CancelPendingEvent)
{
    EventQueue eq;
    int ran = 0;
    auto ref = eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    EXPECT_TRUE(eq.scheduled(ref));
    EXPECT_TRUE(eq.cancel(ref));
    EXPECT_FALSE(eq.scheduled(ref));
    EXPECT_FALSE(eq.cancel(ref)); // double cancel is a no-op
    eq.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, CancelFarFutureEvent)
{
    EventQueue eq;
    int ran = 0;
    auto far = eq.schedule(9'000'000, [&] { ran += 10; });
    eq.schedule(5, [&] { ran += 1; });
    EXPECT_TRUE(eq.cancel(far));
    eq.run();
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelNullAndExecutedRefs)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(sim::EventRef{}));
    EXPECT_FALSE(eq.scheduled(sim::EventRef{}));
    auto ref = eq.schedule(1, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(ref)); // already executed
    EXPECT_FALSE(eq.scheduled(ref));
}

TEST(EventQueue, SelfCancelDuringExecutionIsNoOp)
{
    EventQueue eq;
    sim::EventRef self;
    bool cancelled = true;
    self = eq.schedule(5, [&] { cancelled = eq.cancel(self); });
    eq.run();
    EXPECT_FALSE(cancelled);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, CancelledCallableIsDestroyedOnce)
{
    EventQueue eq;
    auto count = std::make_shared<int>(0);
    auto ref = eq.schedule(10, [count] { (void)count; });
    EXPECT_EQ(count.use_count(), 2);
    EXPECT_TRUE(eq.cancel(ref));
    EXPECT_EQ(count.use_count(), 1); // destroyed at cancel time
    eq.run();
}

TEST(EventQueue, StaleRefDoesNotAliasReusedSlot)
{
    // Arena reuse-after-free: once an event fires, its slot recycles
    // for new events; the stale ref's generation must not match.
    EventQueue eq;
    auto first = eq.schedule(1, [] {});
    eq.run();
    int ran = 0;
    auto second = eq.schedule(After{1}, [&] { ++ran; });
    // The recycled slot likely has the same index but a newer gen.
    EXPECT_FALSE(eq.cancel(first));
    EXPECT_FALSE(eq.scheduled(first));
    EXPECT_TRUE(eq.scheduled(second));
    eq.run();
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, ArenaChurnReusesSlots)
{
    // Heavy schedule/cancel/fire churn across many arena chunks; the
    // sanitizer job turns any use-after-free in slot recycling fatal.
    EventQueue eq;
    std::uint64_t ran = 0;
    std::vector<sim::EventRef> refs;
    for (int round = 0; round < 50; ++round) {
        refs.clear();
        for (int i = 0; i < 600; ++i)
            refs.push_back(eq.schedule(After{static_cast<Tick>(i % 7)},
                                       [&] { ++ran; }));
        for (std::size_t i = 0; i < refs.size(); i += 3)
            EXPECT_TRUE(eq.cancel(refs[i]));
        eq.run();
    }
    EXPECT_EQ(ran, 50u * 400u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, LargeCallablesAreBoxedAndDestroyed)
{
    EventQueue eq;
    struct Big
    {
        std::shared_ptr<int> token;
        unsigned char pad[96]; // force the heap-boxed path
    };
    auto token = std::make_shared<int>(7);
    int got = 0;
    eq.schedule(1, [big = Big{token, {}}, &got] { got = *big.token; });
    auto ref = eq.schedule(2, [big = Big{token, {}}] { (void)big; });
    EXPECT_EQ(token.use_count(), 3);
    EXPECT_TRUE(eq.cancel(ref));
    EXPECT_EQ(token.use_count(), 2);
    eq.run();
    EXPECT_EQ(got, 7);
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, PendingCountTracksCancellation)
{
    EventQueue eq;
    auto a = eq.schedule(10, [] {});
    auto b = eq.schedule(7'000'000, [] {}); // far heap
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_TRUE(eq.cancel(b));
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.cancel(a));
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, PendingCallablesDestroyedWithQueue)
{
    auto token = std::make_shared<int>(1);
    {
        EventQueue eq;
        eq.schedule(50, [token] { (void)token; });
        eq.schedule(8'000'000, [token] { (void)token; });
        EXPECT_EQ(token.use_count(), 3);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(Clock, DefaultIsTwoGigahertz)
{
    Clock c;
    EXPECT_EQ(c.period(), 500u); // 500 ps
    EXPECT_DOUBLE_EQ(c.freqGhz(), 2.0);
}

TEST(Clock, CycleConversionsRoundTrip)
{
    Clock c(2.0);
    EXPECT_EQ(c.cyclesToTicks(4), 2000u);
    EXPECT_EQ(c.ticksToCycles(2000), 4u);
    // Rounding up.
    EXPECT_EQ(c.ticksToCycles(2001), 5u);
}

TEST(Clock, OneGigahertz)
{
    Clock c(1.0);
    EXPECT_EQ(c.period(), 1000u);
    EXPECT_EQ(c.cyclesToTicks(3), 3000u);
}
