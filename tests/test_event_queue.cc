/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using sim::Clock;
using sim::EventQueue;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTicksRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.schedule(After{50}, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.schedule(After{1}, chain);
    };
    eq.schedule(After{1}, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.schedule(21, [&] { ++ran; });
    eq.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, BudgetedRunStopsEarly)
{
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(eq.executed(), 50u);
    EXPECT_TRUE(eq.run(1000));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(After{static_cast<Tick>(i)}, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(Clock, DefaultIsTwoGigahertz)
{
    Clock c;
    EXPECT_EQ(c.period(), 500u); // 500 ps
    EXPECT_DOUBLE_EQ(c.freqGhz(), 2.0);
}

TEST(Clock, CycleConversionsRoundTrip)
{
    Clock c(2.0);
    EXPECT_EQ(c.cyclesToTicks(4), 2000u);
    EXPECT_EQ(c.ticksToCycles(2000), 4u);
    // Rounding up.
    EXPECT_EQ(c.ticksToCycles(2001), 5u);
}

TEST(Clock, OneGigahertz)
{
    Clock c(1.0);
    EXPECT_EQ(c.period(), 1000u);
    EXPECT_EQ(c.cyclesToTicks(3), 3000u);
}
