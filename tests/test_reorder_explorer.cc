/**
 * @file
 * Tests for the crash-state reorder explorer: the pure window
 * enumeration (ordering edges, admissibility, reduction counters),
 * the hook-driven state walk, and the end-to-end model-checking
 * acceptance oracles -- every workload survives persist-reordering
 * exploration, the measured state reduction is at least 10x, the
 * speculation-window capture works, and a deliberately misordered
 * undo log is caught by reorder exploration while prefix-only
 * exploration provably cannot see it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "faultinject/crash_explorer.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "faultinject/pmds_workloads.hh"
#include "faultinject/reorder_explorer.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using faultinject::ExploreOptions;
using faultinject::exploreCrashPoints;
using faultinject::PendingPersist;
using faultinject::ReorderConfig;
using faultinject::ReorderHooks;
using faultinject::WindowEnumerator;

namespace
{

PendingPersist
persist(Addr a, std::uint8_t fill, std::size_t n = 8,
        bool ordered = false)
{
    PendingPersist p;
    p.addr = a;
    p.bytes.assign(n, fill);
    p.ordered = ordered;
    return p;
}

} // namespace

TEST(WindowEnumerator, DisjointEntriesHaveNoEdges)
{
    // Three block-disjoint persists: a free antichain. Every subset
    // is admissible (2^3) and the naive checker would walk every
    // (subset, order) pair: 1 + 3*1 + 3*2 + 6 = 16.
    const std::vector<PendingPersist> w{
        persist(0, 1), persist(64, 2), persist(128, 3)};
    WindowEnumerator e(w);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_TRUE(e.isolated(i)) << i;
    EXPECT_EQ(e.admissibleCount(), 8u);
    EXPECT_EQ(e.naiveSequences(), 16u);

    ReorderConfig cfg;
    EXPECT_EQ(e.canonicalMasks(cfg).size(), 7u); // nonempty subsets
}

TEST(WindowEnumerator, SameBlockEntriesStayInStoreOrder)
{
    // Two persists into one 64-byte block: the PMC's spec-ID check
    // makes "second without first" a detected WAW inversion, so only
    // {}, {0}, {0,1} are reachable.
    const std::vector<PendingPersist> w{persist(0, 1), persist(8, 2)};
    WindowEnumerator e(w);
    EXPECT_EQ(e.predecessors(1), 0b01u);
    EXPECT_EQ(e.successors(0), 0b10u);
    EXPECT_TRUE(e.admissible(0b00));
    EXPECT_TRUE(e.admissible(0b01));
    EXPECT_FALSE(e.admissible(0b10));
    EXPECT_TRUE(e.admissible(0b11));
    EXPECT_EQ(e.admissibleCount(), 3u);
    EXPECT_EQ(e.naiveSequences(), 3u);
}

TEST(WindowEnumerator, OrderedEntryIsAFullBarrier)
{
    // Disjoint blocks, but the middle persist carries the ordering
    // tag (a publication persist behind a spec-barrier): nothing
    // crosses it, so the admissible states are exactly the chain
    // prefixes {}, {0}, {0,1}, {0,1,2}.
    const std::vector<PendingPersist> w{
        persist(0, 1), persist(64, 2, 8, true), persist(128, 3)};
    WindowEnumerator e(w);
    EXPECT_EQ(e.admissibleCount(), 4u);
    EXPECT_EQ(e.naiveSequences(), 4u);
    EXPECT_FALSE(e.admissible(0b010));
    EXPECT_FALSE(e.admissible(0b110));
    EXPECT_TRUE(e.admissible(0b011));
}

namespace
{

/** Hooks over a plain byte image, for driving exploreReorderWindow
 *  without a PM: rewind restores a base copy, apply overlays. */
struct ImageHooks
{
    std::vector<std::uint8_t> base;
    std::vector<std::uint8_t> img;
    std::vector<std::uint64_t> checkedMasks;

    ReorderHooks
    hooks()
    {
        ReorderHooks h;
        h.rewind = [this] { img = base; };
        h.isNoop = [this](const PendingPersist &p) {
            return std::memcmp(img.data() + p.addr, p.bytes.data(),
                               p.bytes.size()) == 0;
        };
        h.apply = [this](const PendingPersist &p) {
            std::memcpy(img.data() + p.addr, p.bytes.data(),
                        p.bytes.size());
        };
        h.digest = [this] {
            // FNV-1a: toy but collision-free at this scale.
            std::uint64_t d = 1469598103934665603ULL;
            for (std::uint8_t b : img)
                d = (d ^ b) * 1099511628211ULL;
            return d;
        };
        h.check = [this](std::uint64_t mask, std::size_t) {
            checkedMasks.push_back(mask);
        };
        return h;
    }
};

} // namespace

TEST(ExploreReorderWindow, ElidesNoopsAndDedupsDigests)
{
    // Entry 2 is isolated *and* writes bytes the durable image
    // already holds: reduction (a) must drop it up front, so the
    // enumerated window shrinks to the two disjoint real writes
    // (3 nonempty subsets), while the naive counters still reflect
    // the raw three-entry window.
    ImageHooks ih;
    ih.base.assign(256, 0);
    const std::vector<PendingPersist> w{
        persist(0, 1), persist(64, 2), persist(128, 0)};

    ReorderConfig cfg;
    std::set<std::uint64_t> seen;
    const auto c =
        faultinject::exploreReorderWindow(w, cfg, ih.hooks(), seen);

    EXPECT_EQ(c.windows, 1u);
    EXPECT_EQ(c.naiveStates, 16u);
    EXPECT_EQ(c.orderingsCollapsed, 8u);
    EXPECT_EQ(c.elidedPersists, 1u);
    EXPECT_EQ(c.canonicalStates, 3u);
    EXPECT_EQ(c.statesExplored, 3u);
    EXPECT_EQ(c.statesDeduped, 0u);
    EXPECT_EQ(ih.checkedMasks.size(), 3u);

    // Second pass over the same window with the same seen-set:
    // reduction (c) recognises every image, nothing is re-checked.
    ih.checkedMasks.clear();
    const auto c2 =
        faultinject::exploreReorderWindow(w, cfg, ih.hooks(), seen);
    EXPECT_EQ(c2.statesExplored, 0u);
    EXPECT_EQ(c2.statesDeduped, 3u);
    EXPECT_TRUE(ih.checkedMasks.empty());
}

TEST(FaultInjector, PowerCutCapturesTheRequestedWindow)
{
    runtime::PersistentMemory pm(1 << 16);
    runtime::VirtualOs os;
    faultinject::FaultInjector inj(pm, os);
    const Addr cells = pm.alloc(8 * 64, 64);
    pm.persistAll();
    for (std::uint64_t i = 0; i < 5; ++i)
        pm.writeU64(cells + 64 * i, 100 + i);

    bool crashed = false;
    try {
        inj.injectPowerCut(2, 3);
    } catch (const faultinject::PowerFailure &pf) {
        crashed = true;
        EXPECT_EQ(pf.durablePrefix, 2u);
    }
    ASSERT_TRUE(crashed);
    // The capture holds the in-flight entries beyond the kept
    // prefix, oldest first, copied before crash() cleared the queue.
    ASSERT_EQ(inj.capturedWindow().size(), 3u);
    EXPECT_EQ(inj.capturedWindow()[0].addr, cells + 64 * 2);
    EXPECT_GT(inj.capturedWindow()[0].specId, 0u);
    // The queue had only the five writes; asking deeper than it goes
    // clamps instead of inventing entries.
    for (std::uint64_t i = 0; i < 5; ++i)
        pm.writeU64(cells + 64 * i, 200 + i);
    try {
        inj.injectPowerCut(3, 16);
    } catch (const faultinject::PowerFailure &) {
    }
    EXPECT_EQ(inj.capturedWindow().size(), 2u);
}

TEST(ReorderExplorer, AllWorkloadsSurviveReorderedCrashStates)
{
    // The tentpole acceptance oracle: all five persistent data
    // structures plus the three macro workloads run clean under
    // persist-reordering exploration, and the three reductions cut
    // the states actually recovered by at least 10x versus the
    // naive same-depth enumeration -- measured, not claimed.
    ExploreOptions opts;
    opts.reorderings = true;
    std::uint64_t naive = 0, explored = 0;
    for (const auto &wl : faultinject::makeAllWorkloads()) {
        const auto res = exploreCrashPoints(*wl, opts);
        EXPECT_TRUE(res.passed())
            << res.workload << " failed " << res.failures
            << " oracle check(s); first: "
            << (res.messages.empty() ? "?" : res.messages.front());
        EXPECT_GT(res.reorderWindows, 0u) << res.workload;
        EXPECT_GT(res.naiveStates, res.reorderStatesExplored)
            << res.workload;
        naive += res.naiveStates;
        explored += res.reorderStatesExplored;
    }
    ASSERT_GT(explored, 0u);
    EXPECT_GE(static_cast<double>(naive) / explored, 10.0)
        << "reduction collapsed: " << naive << " naive vs "
        << explored << " explored";
}

TEST(ReorderExplorer, FindsMisorderedUndoPublicationThatPrefixesMiss)
{
    // The known-bad oracle. The misordered variant skips the
    // spec-barrier ordering tag on the undo log's count bump, so
    // inside the speculation window the bump can overtake the entry
    // it publishes. Three verdicts pin the model checker's value:
    //
    //  1. prefix-only exploration PASSES the buggy runtime -- every
    //     prefix is store-ordered, so the bump never precedes its
    //     entry in any prefix state; the bug is invisible by
    //     construction, not by luck;
    //  2. reorder exploration FAILS it, and among the violations is
    //     an explicit unrecoverable-corruption report (count vouches
    //     for an entry whose header never landed);
    //  3. the same workload with the tags on PASSES reorder
    //     exploration -- the detector flags the bug, not the
    //     workload.
    ExploreOptions prefixOnly;
    const auto missed = exploreCrashPoints(
        *faultinject::makeSpecOrderingBugWorkload(false), prefixOnly);
    EXPECT_TRUE(missed.passed())
        << "prefix enumeration reached a reordered state?! "
        << (missed.messages.empty() ? "?" : missed.messages.front());

    ExploreOptions reorder;
    reorder.reorderings = true;
    const auto caught = exploreCrashPoints(
        *faultinject::makeSpecOrderingBugWorkload(false), reorder);
    EXPECT_FALSE(caught.passed());
    EXPECT_GT(caught.failures, 0u);
    EXPECT_GT(caught.corruptionReported, 0u)
        << "the count-without-entry state must trip the fail-safe";

    const auto fixed = exploreCrashPoints(
        *faultinject::makeSpecOrderingBugWorkload(true), reorder);
    EXPECT_TRUE(fixed.passed())
        << fixed.failures << " oracle check(s) failed; first: "
        << (fixed.messages.empty() ? "?" : fixed.messages.front());
}

TEST(ReorderExplorer, MessageCapBoundsResultGrowth)
{
    ExploreOptions opts;
    opts.reorderings = true;
    opts.maxMessages = 4;
    const auto res = exploreCrashPoints(
        *faultinject::makeSpecOrderingBugWorkload(false), opts);
    EXPECT_FALSE(res.passed());
    EXPECT_EQ(res.messages.size(), 4u);
    EXPECT_GT(res.messagesSuppressed, 0u);
    EXPECT_EQ(res.failures,
              res.messages.size() + res.messagesSuppressed);
}
