/**
 * @file
 * Cross-module crash-recovery property tests: run random failure-
 * atomic operations against each persistent data structure, crash at
 * a random persist prefix (strict persistency's failure model),
 * recover, and verify the structure invariants plus all-or-nothing
 * visibility of the interrupted FASE.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hh"
#include "pmds/kv_store.hh"
#include "pmds/pm_array.hh"
#include "pmds/pm_hashmap.hh"
#include "pmds/pm_queue.hh"
#include "pmds/pm_rbtree.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

/** Crash "power failure" thrown out of a FASE body. */
struct PowerFailure
{
};

/**
 * Run `fn` as a FASE but crash with a random in-flight prefix midway
 * with probability p; @return true if the FASE committed.
 */
template <typename Fn>
bool
runMaybeCrash(FaseRuntime &rt, PersistentMemory &pm, Rng &rng, Fn fn)
{
    try {
        rt.runFase(0, [&](Transaction &tx) {
            fn(tx);
            if (rng.chance(0.3)) {
                pm.crash(rng.below(pm.inFlightCount() + 1));
                throw PowerFailure{};
            }
        });
    } catch (const PowerFailure &) {
        rt.recoverAll();
        return false;
    }
    return true;
}

} // namespace

TEST(CrashRecovery, ArraySwapsPreserveChecksumAcrossCrashes)
{
    Rng rng(101);
    PersistentMemory pm(1 << 22);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy);
    pmds::PmArray arr(pm, 64, 64);
    for (std::size_t i = 0; i < 64; ++i)
        arr.init(i, i + 1);
    pm.persistAll();
    const auto sum = arr.checksum();

    for (int op = 0; op < 300; ++op) {
        std::size_t i = rng.below(64);
        std::size_t j = rng.below(64);
        runMaybeCrash(rt, pm, rng,
                      [&](Transaction &tx) { arr.swap(tx, i, j); });
        ASSERT_EQ(arr.checksum(), sum) << "op " << op;
    }
}

TEST(CrashRecovery, QueueStaysWellFormedAcrossCrashes)
{
    Rng rng(103);
    PersistentMemory pm(1 << 22);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy);
    pmds::PmQueue q(pm, 64);
    std::deque<std::uint64_t> model;

    for (int op = 0; op < 300; ++op) {
        if (rng.chance(0.6)) {
            const auto v = static_cast<std::uint64_t>(op);
            const bool ok = runMaybeCrash(
                rt, pm, rng,
                [&](Transaction &tx) { q.enqueue(tx, v); });
            if (ok)
                model.push_back(v);
        } else {
            std::optional<std::uint64_t> got;
            const bool ok = runMaybeCrash(
                rt, pm, rng,
                [&](Transaction &tx) { got = q.dequeue(tx); });
            if (ok && !model.empty())
                model.pop_front();
        }
        ASSERT_TRUE(q.checkInvariants()) << "op " << op;
        ASSERT_EQ(q.size(), model.size()) << "op " << op;
        if (!model.empty()) {
            ASSERT_EQ(q.front(), model.front());
        }
    }
}

TEST(CrashRecovery, HashmapMatchesModelAcrossCrashes)
{
    Rng rng(107);
    PersistentMemory pm(1 << 23);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy);
    pmds::PmHashmap hm(pm, 32);
    std::map<std::uint64_t, std::uint64_t> model;

    for (int op = 0; op < 400; ++op) {
        const std::uint64_t k = rng.below(64);
        if (rng.chance(0.6)) {
            const std::uint64_t v = rng.next();
            if (runMaybeCrash(rt, pm, rng, [&](Transaction &tx) {
                    hm.put(tx, k, v);
                }))
                model[k] = v;
        } else {
            bool erased = false;
            if (runMaybeCrash(rt, pm, rng, [&](Transaction &tx) {
                    erased = hm.erase(tx, k);
                }))
                model.erase(k);
        }
        ASSERT_TRUE(hm.checkInvariants()) << "op " << op;
    }
    ASSERT_EQ(hm.size(), model.size());
    for (const auto &[k, v] : model)
        ASSERT_EQ(hm.lookup(k), v);
}

TEST(CrashRecovery, RbTreeInvariantsSurviveCrashes)
{
    Rng rng(109);
    PersistentMemory pm(1 << 23);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy, 1 << 17);
    pmds::PmRbTree tree(pm);
    std::map<std::uint64_t, std::uint64_t> model;

    for (int op = 0; op < 400; ++op) {
        const std::uint64_t k = 1 + rng.below(96);
        if (rng.chance(0.6)) {
            if (runMaybeCrash(rt, pm, rng, [&](Transaction &tx) {
                    tree.insert(tx, k, k * 2);
                }))
                model[k] = k * 2;
        } else {
            if (runMaybeCrash(rt, pm, rng, [&](Transaction &tx) {
                    tree.erase(tx, k);
                }))
                model.erase(k);
        }
        ASSERT_TRUE(tree.checkInvariants()) << "op " << op;
        ASSERT_EQ(tree.size(), model.size()) << "op " << op;
    }
    for (const auto &[k, v] : model)
        ASSERT_EQ(tree.lookup(k), v);
}

TEST(CrashRecovery, KvStoreNeverExposesTornValues)
{
    Rng rng(113);
    PersistentMemory pm(1 << 24);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy, 1 << 17);
    pmds::KvConfig cfg;
    cfg.buckets = 16;
    cfg.valueBytes = 256;
    pmds::KvStore kv(pm, cfg);
    std::map<std::uint64_t, std::uint8_t> model;

    for (int op = 0; op < 250; ++op) {
        const std::uint64_t k = rng.below(16);
        const auto b = static_cast<std::uint8_t>(rng.next());
        if (runMaybeCrash(rt, pm, rng,
                          [&](Transaction &tx) { kv.set(tx, k, b); }))
            model[k] = b;
        ASSERT_TRUE(kv.checkInvariants()) << "op " << op;
        // get() panics internally on a torn value.
        for (const auto &[mk, mv] : model)
            ASSERT_EQ(kv.lookup(mk), mv) << "op " << op;
    }
}

TEST(CrashRecovery, CommittedFasesAreNeverLost)
{
    // Durability: once runFase returns, a crash must not undo it.
    Rng rng(127);
    PersistentMemory pm(1 << 22);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy);
    Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 0);
    pm.persistAll();

    for (std::uint64_t v = 1; v <= 50; ++v) {
        rt.runFase(0,
                   [&](Transaction &tx) { tx.writeU64(cell, v); });
        // Power failure right after commit, losing nothing that was
        // promised durable.
        pm.crash(rng.below(pm.inFlightCount() + 1));
        rt.recoverAll();
        ASSERT_EQ(pm.readU64(cell), v);
    }
}
