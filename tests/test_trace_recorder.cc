/**
 * @file
 * Unit tests for the logical trace recorder: access classification,
 * automatic Boundary insertion, and thread routing.
 */

#include <gtest/gtest.h>

#include "runtime/persistent_memory.hh"
#include "workloads/trace_recorder.hh"

using namespace pmemspec;
using persistency::EventKind;
using runtime::PersistentMemory;
using workloads::TraceRecorder;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 20};
    Addr logRegion;
    Addr data;
    TraceRecorder rec{pm, 2};

    Harness()
        : logRegion(pm.alloc(4096, 64)), data(pm.alloc(4096, 64))
    {
        rec.addLogRegion(logRegion, 4096);
    }
};

std::vector<EventKind>
kinds(const persistency::LogicalTrace &t)
{
    std::vector<EventKind> out;
    for (const auto &e : t)
        out.push_back(e.kind);
    return out;
}

} // namespace

TEST(TraceRecorder, ClassifiesLogAndDataWrites)
{
    Harness h;
    h.pm.writeU64(h.logRegion + 64, 1);
    h.pm.writeU64(h.data, 2);
    auto t = h.rec.trace(0);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].kind, EventKind::LogWrite);
    EXPECT_EQ(t[1].kind, EventKind::Boundary); // log->data ordering
    EXPECT_EQ(t[2].kind, EventKind::DataStore);
}

TEST(TraceRecorder, NoBoundaryWithoutPendingLogWrites)
{
    Harness h;
    h.pm.writeU64(h.data, 1);
    h.pm.writeU64(h.data + 8, 2);
    EXPECT_EQ(kinds(h.rec.trace(0)),
              (std::vector<EventKind>{EventKind::DataStore,
                                      EventKind::DataStore}));
}

TEST(TraceRecorder, BoundaryOncePerLogBurst)
{
    Harness h;
    h.pm.writeU64(h.logRegion + 64, 1);
    h.pm.writeU64(h.logRegion + 72, 2);
    h.pm.writeU64(h.data, 3);
    h.pm.writeU64(h.data + 8, 4);
    EXPECT_EQ(kinds(h.rec.trace(0)),
              (std::vector<EventKind>{
                  EventKind::LogWrite, EventKind::LogWrite,
                  EventKind::Boundary, EventKind::DataStore,
                  EventKind::DataStore}));
}

TEST(TraceRecorder, ReadsClassifyByDependence)
{
    Harness h;
    h.pm.readU64(h.data);
    h.pm.readU64Dep(h.data);
    auto t = h.rec.trace(0);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].kind, EventKind::PmLoad);
    EXPECT_EQ(t[1].kind, EventKind::PmLoadDep);
}

TEST(TraceRecorder, StructuralEventsAndSizes)
{
    Harness h;
    h.rec.faseBegin();
    h.rec.lockAcq(3);
    h.pm.write(h.data, "xxxxxxxxxxxxxxxx", 16);
    h.rec.faseEnd();
    h.rec.lockRel(3);
    h.rec.compute(55);
    auto t = h.rec.trace(0);
    ASSERT_EQ(t.size(), 6u);
    EXPECT_EQ(t[0].kind, EventKind::FaseBegin);
    EXPECT_EQ(t[1].kind, EventKind::LockAcq);
    EXPECT_EQ(t[1].addr, 3u);
    EXPECT_EQ(t[2].kind, EventKind::DataStore);
    EXPECT_EQ(t[2].size, 16u);
    EXPECT_EQ(t[3].kind, EventKind::FaseEnd);
    EXPECT_EQ(t[4].kind, EventKind::LockRel);
    EXPECT_EQ(t[5].kind, EventKind::Compute);
    EXPECT_EQ(t[5].addr, 55u);
}

TEST(TraceRecorder, RoutesToSelectedThread)
{
    Harness h;
    h.rec.setThread(0);
    h.pm.writeU64(h.data, 1);
    h.rec.setThread(1);
    h.pm.writeU64(h.data + 8, 2);
    EXPECT_EQ(h.rec.trace(0).size(), 1u);
    EXPECT_EQ(h.rec.trace(1).size(), 1u);
}

TEST(TraceRecorder, DisabledRecorderDropsEvents)
{
    Harness h;
    h.rec.setEnabled(false);
    h.pm.writeU64(h.data, 1);
    h.rec.faseBegin();
    h.rec.setEnabled(true);
    EXPECT_TRUE(h.rec.trace(0).empty());
}

TEST(TraceRecorder, ZeroComputeIsElided)
{
    Harness h;
    h.rec.compute(0);
    EXPECT_TRUE(h.rec.trace(0).empty());
}

TEST(TraceRecorder, TakeTracesResets)
{
    Harness h;
    h.pm.writeU64(h.data, 1);
    auto traces = h.rec.takeTraces();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].size(), 1u);
    EXPECT_TRUE(h.rec.trace(0).empty());
}

TEST(TraceRecorder, DetachesObserverOnDestruction)
{
    PersistentMemory pm(1 << 20);
    Addr data = pm.alloc(64);
    {
        TraceRecorder rec(pm, 1);
        pm.writeU64(data, 1);
        EXPECT_EQ(rec.trace(0).size(), 1u);
    }
    // No crash after the recorder is gone.
    pm.writeU64(data, 2);
}
