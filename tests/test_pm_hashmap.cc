/**
 * @file
 * Unit tests for the persistent chained hashmap, including a model
 * check against std::map under randomised operations.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "pmds/pm_hashmap.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::PmHashmap;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 23};
    VirtualOs os;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy};
    PmHashmap hm{pm, 64};

    void
    put(std::uint64_t k, std::uint64_t v)
    {
        rt.runFase(0, [&](Transaction &tx) { hm.put(tx, k, v); });
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        std::optional<std::uint64_t> out;
        rt.runFase(0, [&](Transaction &tx) { out = hm.get(tx, k); });
        return out;
    }

    bool
    erase(std::uint64_t k)
    {
        bool out = false;
        rt.runFase(0, [&](Transaction &tx) { out = hm.erase(tx, k); });
        return out;
    }
};

} // namespace

TEST(PmHashmap, MissingKeyReturnsNothing)
{
    Harness h;
    EXPECT_FALSE(h.get(1).has_value());
    EXPECT_FALSE(h.hm.lookup(1).has_value());
}

TEST(PmHashmap, PutThenGet)
{
    Harness h;
    h.put(1, 100);
    EXPECT_EQ(h.get(1), 100u);
    EXPECT_EQ(h.hm.lookup(1), 100u);
    EXPECT_EQ(h.hm.size(), 1u);
}

TEST(PmHashmap, PutOverwrites)
{
    Harness h;
    h.put(1, 100);
    h.put(1, 200);
    EXPECT_EQ(h.get(1), 200u);
    EXPECT_EQ(h.hm.size(), 1u);
}

TEST(PmHashmap, EraseRemoves)
{
    Harness h;
    h.put(1, 100);
    h.put(2, 200);
    EXPECT_TRUE(h.erase(1));
    EXPECT_FALSE(h.get(1).has_value());
    EXPECT_EQ(h.get(2), 200u);
    EXPECT_FALSE(h.erase(1));
    EXPECT_EQ(h.hm.size(), 1u);
}

TEST(PmHashmap, ChainsHandleCollisions)
{
    // With 64 buckets, 512 keys guarantee long chains.
    Harness h;
    for (std::uint64_t k = 0; k < 512; ++k)
        h.put(k, k * 3);
    EXPECT_EQ(h.hm.size(), 512u);
    for (std::uint64_t k = 0; k < 512; ++k)
        ASSERT_EQ(h.get(k), k * 3);
    EXPECT_TRUE(h.hm.checkInvariants());
}

TEST(PmHashmap, EraseFromChainMiddle)
{
    Harness h;
    for (std::uint64_t k = 0; k < 64; ++k)
        h.put(k, k);
    for (std::uint64_t k = 0; k < 64; k += 2)
        EXPECT_TRUE(h.erase(k));
    for (std::uint64_t k = 0; k < 64; ++k) {
        if (k % 2)
            ASSERT_EQ(h.get(k), k);
        else
            ASSERT_FALSE(h.get(k).has_value());
    }
    EXPECT_TRUE(h.hm.checkInvariants());
}

TEST(PmHashmap, ModelCheckAgainstStdMap)
{
    Harness h;
    std::map<std::uint64_t, std::uint64_t> model;
    Rng rng(17);
    for (int op = 0; op < 1500; ++op) {
        const std::uint64_t k = rng.below(128);
        const double dice = rng.uniform();
        if (dice < 0.5) {
            const std::uint64_t v = rng.next();
            h.put(k, v);
            model[k] = v;
        } else if (dice < 0.8) {
            auto got = h.get(k);
            auto it = model.find(k);
            if (it == model.end())
                ASSERT_FALSE(got.has_value());
            else
                ASSERT_EQ(got, it->second);
        } else {
            ASSERT_EQ(h.erase(k), model.erase(k) > 0);
        }
    }
    EXPECT_EQ(h.hm.size(), model.size());
    EXPECT_TRUE(h.hm.checkInvariants());
}

TEST(PmHashmap, AbortedPutRollsBack)
{
    Harness h;
    h.put(1, 100);
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.hm.put(tx, 1, 999); // overwrite
            h.hm.put(tx, 2, 222); // fresh insert
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.get(1), 100u);
    EXPECT_FALSE(h.get(2).has_value());
    EXPECT_TRUE(h.hm.checkInvariants());
}

TEST(PmHashmap, BucketOfIsStable)
{
    Harness h;
    EXPECT_EQ(h.hm.bucketOf(42), h.hm.bucketOf(42));
    EXPECT_LT(h.hm.bucketOf(42), h.hm.buckets());
}
