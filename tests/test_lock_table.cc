/**
 * @file
 * Unit tests for the simulated-time lock table.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/lock_table.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using cpu::LockTable;
using sim::EventQueue;

namespace
{

struct Harness
{
    EventQueue eq;
    StatGroup stats{"test"};
    LockTable locks{eq, &stats};
};

} // namespace

TEST(LockTable, UncontendedAcquireCompletes)
{
    Harness h;
    bool got = false;
    h.locks.acquire(1, 0, [&] { got = true; });
    EXPECT_FALSE(got); // acquire latency must elapse
    h.eq.run();
    EXPECT_TRUE(got);
    EXPECT_TRUE(h.locks.held(1));
    EXPECT_EQ(h.locks.holder(1), 0u);
}

TEST(LockTable, MutualExclusionAndFifoHandoff)
{
    Harness h;
    std::vector<CoreId> grants;
    h.locks.acquire(1, 0, [&] { grants.push_back(0); });
    h.locks.acquire(1, 1, [&] { grants.push_back(1); });
    h.locks.acquire(1, 2, [&] { grants.push_back(2); });
    h.eq.run();
    ASSERT_EQ(grants.size(), 1u); // others wait for release
    h.locks.release(1, 0);
    h.eq.run();
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[1], 1u);
    h.locks.release(1, 1);
    h.eq.run();
    ASSERT_EQ(grants.size(), 3u);
    EXPECT_EQ(grants[2], 2u);
    h.locks.release(1, 2);
    EXPECT_FALSE(h.locks.held(1));
}

TEST(LockTable, IndependentLocks)
{
    Harness h;
    int grants = 0;
    h.locks.acquire(1, 0, [&] { ++grants; });
    h.locks.acquire(2, 1, [&] { ++grants; });
    h.eq.run();
    EXPECT_EQ(grants, 2);
}

TEST(LockTable, ContendedCounterTracksWaits)
{
    Harness h;
    h.locks.acquire(7, 0, [] {});
    h.locks.acquire(7, 1, [] {});
    h.eq.run();
    EXPECT_EQ(h.locks.acquires.value(), 1u);
    EXPECT_EQ(h.locks.contendedAcquires.value(), 1u);
    h.locks.release(7, 0);
    h.eq.run();
    EXPECT_EQ(h.locks.acquires.value(), 2u);
}

TEST(LockTable, CancelWaitRemovesWaiter)
{
    Harness h;
    bool granted = false;
    h.locks.acquire(3, 0, [] {});
    h.eq.run();
    h.locks.acquire(3, 1, [&] { granted = true; });
    EXPECT_TRUE(h.locks.cancelWait(3, 1));
    h.locks.release(3, 0);
    h.eq.run();
    EXPECT_FALSE(granted);
    EXPECT_FALSE(h.locks.held(3));
}

TEST(LockTable, CancelWaitOnNonWaiterReturnsFalse)
{
    Harness h;
    EXPECT_FALSE(h.locks.cancelWait(3, 1));
    h.locks.acquire(3, 0, [] {});
    h.eq.run();
    EXPECT_FALSE(h.locks.cancelWait(3, 0)); // holder, not waiter
    h.locks.release(3, 0);
}

TEST(LockTable, ReleaseOfUnheldLockPanics)
{
    Harness h;
    EXPECT_DEATH(h.locks.release(9, 0), "unheld");
}

TEST(LockTable, ReleaseByNonOwnerPanics)
{
    Harness h;
    h.locks.acquire(4, 0, [] {});
    h.eq.run();
    EXPECT_DEATH(h.locks.release(4, 1), "held by");
}

TEST(LockTable, HandoffChargesLatency)
{
    Harness h;
    Tick granted_at = 0;
    h.locks.acquire(5, 0, [] {});
    h.eq.run();
    const Tick release_time = h.eq.now();
    h.locks.acquire(5, 1, [&] { granted_at = h.eq.now(); });
    h.locks.release(5, 0);
    h.eq.run();
    EXPECT_GT(granted_at, release_time);
}
