/**
 * @file
 * pm_top: offline report tool over pmemspec-bench-v1 envelopes with
 * metrics sections.
 *
 *   pm_top RUN.json             render every run's time-series
 *                               dashboard + speculation profile
 *   pm_top RUN.json BASE.json   diff RUN against BASE, aligned by
 *                               run label (design / point id)
 *
 * A "run" is either a tables.service row (ycsb_service: labelled by
 * design) or a points[] entry (machine sweeps: labelled by point id)
 * that carries the "metrics"/"profile" sections emitted under
 * --metrics. The time series renders one line per sampling interval
 * (columns from the merged "total" series); the profile renders one
 * line per FASE site from the pmemspec-profile-v1 section. Exit code
 * 1 on usage / parse / no-metrics errors, 0 otherwise.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

using pmemspec::Json;

namespace
{

/** One renderable run extracted from an envelope. */
struct Run
{
    std::string label;
    const Json *row = nullptr;     ///< the full row/point object
    const Json *series = nullptr;  ///< {"columns": [...], "rows": [...]}
    const Json *profile = nullptr; ///< pmemspec-profile-v1 object
    double intervalUs = 0;
};

[[noreturn]] void
usageExit(const char *prog, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s RUN.json [BASELINE.json]\n"
        "\n"
        "  Renders the --metrics time series and speculation profile\n"
        "  of a pmemspec-bench-v1 envelope as a per-interval text\n"
        "  dashboard; with a second envelope, diffs the two runs\n"
        "  (aligned by design / point id).\n",
        prog);
    std::exit(code);
}

Json
loadEnvelope(const char *prog, const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "%s: cannot open %s\n", prog,
                     path.c_str());
        std::exit(1);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string err;
    Json doc = Json::parse(buf.str(), &err);
    if (doc.isNull() && !err.empty()) {
        std::fprintf(stderr, "%s: %s: %s\n", prog, path.c_str(),
                     err.c_str());
        std::exit(1);
    }
    const Json *schema = doc.find("schema");
    if (!schema || schema->str() != "pmemspec-bench-v1") {
        std::fprintf(stderr, "%s: %s is not a pmemspec-bench-v1 "
                     "envelope\n", prog, path.c_str());
        std::exit(1);
    }
    return doc;
}

/** Pull the (label, series, profile) runs out of one envelope. */
std::vector<Run>
extractRuns(const Json &doc)
{
    std::vector<Run> runs;
    auto addRun = [&](const std::string &label, const Json &row) {
        const Json *metrics = row.find("metrics");
        const Json *profile = row.find("profile");
        if (!metrics && !profile)
            return;
        Run r;
        r.label = label;
        r.row = &row;
        r.profile = profile;
        if (metrics) {
            // Service rows nest the merged series under "total";
            // sweep points carry a bare {columns, rows} series.
            r.series = metrics->find("total");
            if (!r.series && metrics->find("columns"))
                r.series = metrics;
            if (const Json *iv = metrics->find("interval_us"))
                r.intervalUs = iv->number();
        }
        runs.push_back(r);
    };

    if (const Json *tables = doc.find("tables")) {
        for (const auto &[name, rows] : tables->members()) {
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const Json &row = rows.at(i);
                const Json *design = row.find("design");
                const std::string label =
                    design ? design->str()
                           : name + "[" + std::to_string(i) + "]";
                addRun(label, row);
            }
        }
    }
    if (const Json *points = doc.find("points")) {
        for (std::size_t i = 0; i < points->size(); ++i) {
            const Json &p = points->at(i);
            const Json *id = p.find("id");
            addRun(id ? id->str() : "point" + std::to_string(i), p);
        }
    }
    return runs;
}

std::string
fmtValue(double v)
{
    char buf[32];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

/** Per-interval dashboard: one line per sampled row. */
void
renderSeries(const Json &series)
{
    const Json *cols = series.find("columns");
    const Json *rows = series.find("rows");
    if (!cols || !rows || rows->size() == 0) {
        std::printf("  (no sampled rows)\n");
        return;
    }
    std::printf("  %10s", "t(us)");
    for (std::size_t c = 0; c < cols->size(); ++c)
        std::printf(" %14s", cols->at(c).str().c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < rows->size(); ++r) {
        const Json &row = rows->at(r);
        // row[0] is the timestamp in ns, then one value per column.
        std::printf("  %10.0f", row.at(0).number() / 1000.0);
        for (std::size_t c = 1; c < row.size(); ++c)
            std::printf(" %14s", fmtValue(row.at(c).number()).c_str());
        std::printf("\n");
    }
}

double
siteNum(const Json &site, const char *key)
{
    const Json *v = site.find(key);
    return v ? v->number() : 0;
}

void
renderProfile(const Json &profile)
{
    const Json *schema = profile.find("schema");
    if (schema)
        std::printf("  profile schema: %s\n", schema->str().c_str());
    const Json *sites = profile.find("sites");
    if (!sites || sites->size() == 0) {
        std::printf("  (no FASE sites)\n");
        return;
    }
    std::printf("  %-12s %9s %9s %7s %8s %7s %6s %6s %9s %8s\n",
                "site", "execs", "commits", "aborts", "misspec",
                "budget", "power", "media", "persists",
                "resid(us)");
    for (std::size_t i = 0; i < sites->size(); ++i) {
        const Json &s = sites->at(i);
        const Json *name = s.find("name");
        const Json *aborts = s.find("aborts");
        const Json *resid = s.find("residency");
        const double meanNs =
            resid ? siteNum(*resid, "mean_ns") : 0;
        std::printf(
            "  %-12s %9.0f %9.0f %7.0f %8.0f %7.0f %6.0f %6.0f "
            "%9.0f %8.1f\n",
            name ? name->str().c_str() : "?",
            siteNum(s, "executions"), siteNum(s, "commits"),
            siteNum(s, "aborts_total"),
            aborts ? siteNum(*aborts, "misspec") : 0,
            aborts ? siteNum(*aborts, "budget") : 0,
            aborts ? siteNum(*aborts, "power_cut") : 0,
            aborts ? siteNum(*aborts, "media") : 0,
            siteNum(s, "persists"), meanNs / 1000.0);
    }
}

void
renderRun(const Run &run)
{
    std::printf("== %s ==\n", run.label.c_str());
    if (run.row) {
        const Json *tput = run.row->find("throughput_ops_s");
        const Json *avail = run.row->find("availability");
        const Json *thr = run.row->find("throughput");
        if (tput)
            std::printf("  throughput: %.0f ops/s", tput->number());
        else if (thr)
            std::printf("  throughput: %.0f FASEs/s", thr->number());
        if (avail)
            std::printf("  availability: %.4f", avail->number());
        if (tput || thr || avail)
            std::printf("\n");
    }
    if (run.intervalUs > 0)
        std::printf("  sampling interval: %.0f us\n", run.intervalUs);
    if (run.series) {
        std::printf("-- time series --\n");
        renderSeries(*run.series);
    }
    if (run.profile) {
        std::printf("-- speculation profile --\n");
        renderProfile(*run.profile);
    }
    std::printf("\n");
}

std::string
fmtDelta(double cur, double base)
{
    char buf[48];
    const double d = cur - base;
    if (base != 0)
        std::snprintf(buf, sizeof(buf), "%+.0f (%+.1f%%)", d,
                      100.0 * d / base);
    else
        std::snprintf(buf, sizeof(buf), "%+.0f", d);
    return buf;
}

const Run *
findRun(const std::vector<Run> &runs, const std::string &label)
{
    for (const auto &r : runs)
        if (r.label == label)
            return &r;
    return nullptr;
}

const Json *
findSite(const Json &sites, const std::string &name)
{
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const Json *n = sites.at(i).find("name");
        if (n && n->str() == name)
            return &sites.at(i);
    }
    return nullptr;
}

/** Diff one aligned pair of runs: headline numbers + per-site
 *  profile deltas. */
void
diffRun(const Run &cur, const Run &base)
{
    std::printf("== %s (run vs baseline) ==\n", cur.label.c_str());
    auto headline = [&](const char *key, const char *unit) {
        const Json *a = cur.row ? cur.row->find(key) : nullptr;
        const Json *b = base.row ? base.row->find(key) : nullptr;
        if (a && b)
            std::printf("  %-18s %12.2f vs %12.2f  %s %s\n", key,
                        a->number(), b->number(),
                        fmtDelta(a->number(), b->number()).c_str(),
                        unit);
    };
    headline("throughput_ops_s", "ops/s");
    headline("throughput", "FASEs/s");
    headline("availability", "");

    if (!cur.profile || !base.profile) {
        std::printf("  (profile missing on one side)\n\n");
        return;
    }
    const Json *cs = cur.profile->find("sites");
    const Json *bs = base.profile->find("sites");
    if (!cs || !bs) {
        std::printf("  (profile missing on one side)\n\n");
        return;
    }
    std::printf("  %-12s %-12s %14s %14s %20s\n", "site", "field",
                "run", "baseline", "delta");
    static const char *fields[] = {"executions", "commits",
                                   "aborts_total", "persists",
                                   "dirty_blocks"};
    for (std::size_t i = 0; i < cs->size(); ++i) {
        const Json &s = cs->at(i);
        const Json *name = s.find("name");
        if (!name)
            continue;
        const Json *o = findSite(*bs, name->str());
        if (!o) {
            std::printf("  %-12s (absent from baseline)\n",
                        name->str().c_str());
            continue;
        }
        for (const char *f : fields) {
            const double a = siteNum(s, f), b = siteNum(*o, f);
            if (a == 0 && b == 0)
                continue;
            std::printf("  %-12s %-12s %14.0f %14.0f %20s\n",
                        name->str().c_str(), f, a, b,
                        fmtDelta(a, b).c_str());
        }
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3)
        usageExit(argv[0], argc < 2 ? 1 : 1);
    const std::string arg1 = argv[1];
    if (arg1 == "--help" || arg1 == "-h")
        usageExit(argv[0], 0);

    const Json doc = loadEnvelope(argv[0], arg1);
    const std::vector<Run> runs = extractRuns(doc);
    if (runs.empty()) {
        std::fprintf(stderr,
                     "%s: %s has no metrics/profile sections (run "
                     "the bench with --metrics)\n",
                     argv[0], arg1.c_str());
        return 1;
    }

    if (argc == 2) {
        const Json *figure = doc.find("figure");
        std::printf("# pm_top: %s (%zu run%s with metrics)\n\n",
                    figure ? figure->str().c_str() : "?", runs.size(),
                    runs.size() == 1 ? "" : "s");
        for (const Run &r : runs)
            renderRun(r);
        return 0;
    }

    const Json baseDoc = loadEnvelope(argv[0], argv[2]);
    const std::vector<Run> baseRuns = extractRuns(baseDoc);
    std::printf("# pm_top diff: %s vs %s\n\n", argv[1], argv[2]);
    bool any = false;
    for (const Run &r : runs) {
        if (const Run *b = findRun(baseRuns, r.label)) {
            diffRun(r, *b);
            any = true;
        } else {
            std::printf("== %s == (absent from baseline)\n\n",
                        r.label.c_str());
        }
    }
    if (!any) {
        std::fprintf(stderr,
                     "%s: no run labels in common between the two "
                     "envelopes\n", argv[0]);
        return 1;
    }
    return 0;
}
