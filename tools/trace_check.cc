/**
 * @file
 * trace_check: offline automaton oracle for PMTRACE1 binary logs.
 *
 * For every trace file on the command line, replays the event stream
 * through the independent Figure 5 automaton / spec-ID order replica
 * (observe::checkEvents) and prints the per-file summary.  Exits
 * non-zero if any file is unreadable or any checker disagreement
 * survives, so CI can gate on "the hardware detector and the offline
 * model agree on every misspeculation".
 */

#include <cstdio>
#include <string>
#include <vector>

#include "observe/trace_checker.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;

    std::vector<std::string> paths(argv + 1, argv + argc);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: trace_check <trace.bin> [trace.bin ...]\n"
                     "\n"
                     "Replays PMTRACE1 binary logs (produced with "
                     "--trace=... --trace-out=file.bin)\n"
                     "through the offline speculation-automaton checker "
                     "and reports disagreements\n"
                     "between the hardware misspeculation detector and "
                     "the independently derived\n"
                     "verdicts.  Exit status is the number of failing "
                     "files (capped at 125).\n");
        return 2;
    }

    int failing = 0;
    for (const auto &path : paths) {
        const observe::CheckResult res = observe::checkTraceFile(path);
        std::printf("%s: %s\n", path.c_str(), res.summary().c_str());
        for (const auto &note : res.notes)
            std::printf("  note: %s\n", note.c_str());
        for (const auto &d : res.disagreements)
            std::printf("  DISAGREE: %s\n", d.c_str());
        if (!res.ok())
            ++failing;
        std::fflush(stdout);
    }

    if (failing)
        std::fprintf(stderr, "trace_check: %d of %zu file(s) FAILED\n",
                     failing, paths.size());
    return failing > 125 ? 125 : failing;
}
