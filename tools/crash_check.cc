/**
 * @file
 * crash_check: the crash-state model checker as a CLI.
 *
 * Runs the crash-state exploration over the named workloads
 * (default: all five persistent data structures plus the downsized
 * TATP / TPC-C / Vacation macro workloads) with persist-reordering
 * exploration on, prints the per-workload verdict with the reduction
 * counters, and optionally writes the pmemspec-bench-v1 JSON
 * envelope for CI gating and the BENCH_modelcheck.json trajectory.
 * `--sim-threads=N` fans the per-op exploration domains out over N
 * host threads (exploreCrashPointsParallel); every counter, message
 * and verdict is byte-identical to the sequential run -- only the
 * wall_ms fields change.
 *
 * Exit status is the number of workloads with oracle violations
 * (capped at 125), so CI can gate directly on it.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "faultinject/crash_explorer.hh"
#include "faultinject/pmds_workloads.hh"
#include "mem/mem_config.hh"
#include "mem/persist_path.hh"

namespace
{

struct Options
{
    unsigned depth = 6;
    bool prefixOnly = false;
    bool torn = false;
    bool listOnly = false;
    /** Host threads over the per-op exploration domains; 1 =
     *  sequential explorer, 0 = hardware concurrency. The verdict
     *  and every counter are byte-identical for any value. */
    unsigned simThreads = 1;
    std::string jsonPath;
    std::vector<std::string> workloads;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: crash_check [options] [workload ...]\n"
        "\n"
        "Explores every crash point of each workload and, per crash\n"
        "point, the order-consistent persist subsets of the\n"
        "speculation window (the reordered crash states prefix\n"
        "enumeration cannot reach), checking the recovery oracles on\n"
        "each novel state.\n"
        "\n"
        "  --depth=N       speculation-window entries enumerated past\n"
        "                  each crash point (default 6, clamped to\n"
        "                  the default timing model's window)\n"
        "  --prefix-only   disable reorder exploration (baseline)\n"
        "  --torn          also explore torn-write frontiers\n"
        "  --sim-threads=N host threads over the per-op exploration\n"
        "                  domains (default 1 = sequential, 0 = host\n"
        "                  cores); all results are byte-identical for\n"
        "                  any N -- only wall_ms changes\n"
        "  --json=PATH     write the pmemspec-bench-v1 envelope\n"
        "  --list          print the known workload names and exit\n"
        "\n"
        "With no workload arguments, all of them run. Exit status is\n"
        "the number of failing workloads (capped at 125).\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            return false;
        } else if (a.rfind("--depth=", 0) == 0) {
            opt.depth = static_cast<unsigned>(
                std::strtoul(a.c_str() + 8, nullptr, 10));
        } else if (a == "--prefix-only") {
            opt.prefixOnly = true;
        } else if (a == "--torn") {
            opt.torn = true;
        } else if (a.rfind("--sim-threads=", 0) == 0) {
            opt.simThreads = static_cast<unsigned>(
                std::strtoul(a.c_str() + 14, nullptr, 10));
        } else if (a.rfind("--json=", 0) == 0) {
            opt.jsonPath = a.substr(7);
        } else if (a == "--list") {
            opt.listOnly = true;
        } else if (a.rfind("--", 0) == 0) {
            std::fprintf(stderr, "crash_check: unknown option %s\n",
                         a.c_str());
            return false;
        } else {
            opt.workloads.push_back(a);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using faultinject::ExploreOptions;
    using faultinject::ExploreResult;

    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }

    // The seeded-bug twins are selectable by name (demo / debugging)
    // but excluded from the default run: misordered_undo FAILS by
    // design -- that is the point of it.
    auto all = faultinject::makeAllWorkloads();
    const std::size_t defaultCount = all.size();
    all.push_back(faultinject::makeSpecOrderingBugWorkload(true));
    all.push_back(faultinject::makeSpecOrderingBugWorkload(false));
    if (opt.listOnly) {
        for (std::size_t i = 0; i < all.size(); ++i)
            std::printf("%s%s\n", all[i]->name(),
                        i < defaultCount ? "" : " (on request only)");
        return 0;
    }

    // Depth beyond what the persist path can physically hold in
    // flight would check impossible states; clamp to the default
    // timing model's window.
    const mem::MemConfig timing;
    const auto physical = mem::persistsInWindow(
        timing.effectiveSpecWindow(), timing.persistPathLatency);
    if (opt.depth > physical) {
        std::fprintf(stderr,
                     "crash_check: depth %u exceeds the speculation "
                     "window (%zu persists); clamping\n",
                     opt.depth, physical);
        opt.depth = static_cast<unsigned>(physical);
    }

    std::vector<std::string> selected;
    for (const auto &name : opt.workloads) {
        bool found = false;
        for (const auto &wl : all)
            if (name == wl->name())
                found = true;
        if (!found) {
            std::fprintf(stderr,
                         "crash_check: unknown workload '%s' "
                         "(try --list)\n",
                         name.c_str());
            return 2;
        }
        selected.push_back(name);
    }
    if (selected.empty()) {
        for (std::size_t i = 0; i < defaultCount; ++i)
            selected.push_back(all[i]->name());
    }

    ExploreOptions eopt;
    eopt.reorderings = !opt.prefixOnly;
    eopt.windowDepth = opt.depth;
    eopt.tornWrites = opt.torn;

    core::ResultSink sink("crash_check");
    // --sim-threads is a host fact, not a result; leaving it out of
    // the meta keeps the JSON byte-identical across thread counts
    // (only wall_ms / total_wall_ms vary).
    sink.setMeta("window_depth", Json(std::uint64_t{opt.depth}));
    sink.setMeta("reorderings", Json(!opt.prefixOnly));
    sink.setMeta("torn_writes", Json(opt.torn));

    int failing = 0;
    std::uint64_t totNaive = 0, totExplored = 0, totPruned = 0;
    double totalMs = 0;
    for (const auto &name : selected) {
        const auto factory = faultinject::workloadFactory(name);
        const auto t0 = std::chrono::steady_clock::now();
        const ExploreResult res = faultinject::
            exploreCrashPointsParallel(factory, eopt, opt.simThreads);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();

        std::printf(
            "%-16s %s  ops=%zu crash_points=%zu windows=%llu "
            "naive=%llu explored=%llu deduped=%llu pruned=%llu "
            "elided=%llu reduction=%.1fx  %.0f ms\n",
            name.c_str(), res.passed() ? "PASS" : "FAIL", res.ops,
            res.crashPoints,
            static_cast<unsigned long long>(res.reorderWindows),
            static_cast<unsigned long long>(res.naiveStates),
            static_cast<unsigned long long>(res.reorderStatesExplored),
            static_cast<unsigned long long>(res.reorderStatesDeduped),
            static_cast<unsigned long long>(res.statesPruned()),
            static_cast<unsigned long long>(res.elidedPersists),
            res.reductionFactor(), ms);
        for (const auto &msg : res.messages)
            std::printf("  VIOLATION: %s\n", msg.c_str());
        if (res.messagesSuppressed)
            std::printf("  ... and %zu more violation(s)\n",
                        res.messagesSuppressed);
        std::fflush(stdout);

        Json row = Json::object();
        row.set("workload", Json(name));
        row.set("passed", Json(res.passed()));
        row.set("failures", Json(std::uint64_t{res.failures}));
        row.set("ops", Json(std::uint64_t{res.ops}));
        row.set("crash_points", Json(std::uint64_t{res.crashPoints}));
        row.set("reorder_windows", Json(res.reorderWindows));
        row.set("naive_states", Json(res.naiveStates));
        row.set("states_explored", Json(res.reorderStatesExplored));
        row.set("states_deduped", Json(res.reorderStatesDeduped));
        row.set("states_pruned", Json(res.statesPruned()));
        row.set("elided_persists", Json(res.elidedPersists));
        row.set("orderings_collapsed", Json(res.orderingsCollapsed));
        row.set("reduction_factor", Json(res.reductionFactor()));
        row.set("wall_ms", Json(ms));
        sink.addRow("modelcheck", row);

        if (!res.passed())
            ++failing;
        totNaive += res.naiveStates;
        totExplored += res.reorderStatesExplored;
        totPruned += res.statesPruned();
        totalMs += ms;
    }

    sink.setMeta("total_naive_states", Json(totNaive));
    sink.setMeta("total_states_explored", Json(totExplored));
    sink.setMeta("total_states_pruned", Json(totPruned));
    sink.setMeta("total_wall_ms", Json(totalMs));
    if (!opt.jsonPath.empty() && !sink.writeFile(opt.jsonPath))
        return 2;

    if (failing)
        std::fprintf(stderr, "crash_check: %d workload(s) FAILED\n",
                     failing);
    return failing > 125 ? 125 : failing;
}
