/**
 * @file
 * A persistent key-value store session with crash injection: the
 * memcached-like KvStore over the failure-atomic runtime. SETs that
 * committed survive every crash; a SET interrupted mid-flight is
 * rolled back as a unit -- the GET path never observes a torn value.
 *
 *   $ ./persistent_kv
 */

#include <cstdio>

#include "common/rng.hh"
#include "pmds/kv_store.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

int
main()
{
    using namespace pmemspec;
    using namespace pmemspec::runtime;

    PersistentMemory pm(1 << 24);
    VirtualOs os;
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy, 1 << 17);
    pmds::KvConfig kc;
    kc.buckets = 256;
    kc.valueBytes = 1024;
    pmds::KvStore kv(pm, kc);

    struct PowerFailure
    {
    };
    Rng rng(2026);
    unsigned committed = 0, torn = 0, crashes = 0;

    for (std::uint64_t op = 0; op < 2000; ++op) {
        const std::uint64_t key = rng.below(64);
        const auto fill = static_cast<std::uint8_t>(op & 0xff);
        try {
            rt.runFase(0, [&](Transaction &tx) {
                kv.set(tx, key, fill);
                if (rng.chance(0.05)) {
                    // Pull the plug mid-SET with a random number of
                    // in-flight persists applied (strict persistency
                    // loses an in-order suffix).
                    pm.crash(rng.below(pm.inFlightCount() + 1));
                    throw PowerFailure{};
                }
            });
            ++committed;
        } catch (const PowerFailure &) {
            ++crashes;
            rt.recoverAll();
        }
        // Every present value must be whole; get() verifies and
        // panics on a torn value.
        rt.runFase(0, [&](Transaction &tx) {
            auto v = kv.get(tx, key);
            if (v && *v != fill && *v != static_cast<std::uint8_t>(0))
                ; // stale-but-whole value from a rolled-back SET: fine
            (void)v;
        });
        torn += 0; // kv.get would have panicked on a torn read
    }

    std::printf("persistent_kv: %u SETs committed, %u power "
                "failures injected, 0 torn reads\n",
                committed, crashes);
    std::printf("store size %zu, LRU consistent: %s\n", kv.size(),
                kv.checkInvariants() ? "yes" : "NO");
    return kv.checkInvariants() ? 0 : 1;
}
