/**
 * @file
 * Quickstart: simulate one benchmark under PMEM-Spec and print the
 * headline numbers, then show the functional failure-atomicity API
 * in five lines.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/experiment.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

int
main()
{
    using namespace pmemspec;

    // ----------------------------------------------------------
    // 1. Timing layer: run the Array Swaps microbenchmark on the
    //    Table 3 machine under PMEM-Spec.
    // ----------------------------------------------------------
    core::ExperimentConfig cfg;
    cfg.bench = workloads::BenchId::ArraySwaps;
    cfg.design = persistency::Design::PmemSpec;
    cfg.machine = core::defaultMachineConfig(8);
    cfg.workload.numThreads = 8;
    cfg.workload.opsPerThread = 200;

    auto res = core::runExperiment(cfg);
    std::printf("PMEM-Spec, ArraySwaps, 8 cores:\n");
    std::printf("  committed FASEs : %llu\n",
                static_cast<unsigned long long>(res.run.fases));
    std::printf("  simulated time  : %.1f us\n",
                static_cast<double>(res.run.simTicks) / 1e6);
    std::printf("  throughput      : %.2f M FASEs/s\n",
                res.throughput / 1e6);
    std::printf("  misspeculations : %llu load, %llu store\n",
                static_cast<unsigned long long>(res.run.loadMisspecs),
                static_cast<unsigned long long>(
                    res.run.storeMisspecs));

    // ----------------------------------------------------------
    // 2. Functional layer: a failure-atomic update that survives a
    //    power failure.
    // ----------------------------------------------------------
    runtime::PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1,
                            runtime::RecoveryPolicy::Lazy);
    const Addr account_a = pm.alloc(8, 64);
    const Addr account_b = pm.alloc(8, 64);
    pm.writeU64(account_a, 100);
    pm.writeU64(account_b, 0);
    pm.persistAll();

    // Transfer 40 units failure-atomically.
    rt.runFase(0, [&](runtime::Transaction &tx) {
        tx.writeU64(account_a, tx.readU64(account_a) - 40);
        tx.writeU64(account_b, tx.readU64(account_b) + 40);
    });

    // Power failure at an arbitrary point afterwards...
    pm.crash(0);
    rt.recoverAll();
    std::printf("\nAfter commit + power failure + recovery:\n");
    std::printf("  account A = %llu, account B = %llu (sum %llu)\n",
                static_cast<unsigned long long>(pm.readU64(account_a)),
                static_cast<unsigned long long>(pm.readU64(account_b)),
                static_cast<unsigned long long>(
                    pm.readU64(account_a) + pm.readU64(account_b)));
    return 0;
}
