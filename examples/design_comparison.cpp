/**
 * @file
 * Compare the four persistency-model implementations on one
 * benchmark: the Figure 2 programming models (ordering-instruction
 * mixes) side by side with the Figure 9 throughput they produce.
 *
 *   $ ./design_comparison [benchmark-name] [ops-per-thread]
 */

#include <cstdio>
#include <cstring>

#include "core/experiment.hh"
#include "persistency/lowering.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using persistency::Design;

    workloads::BenchId bench = workloads::BenchId::Tpcc;
    if (argc > 1) {
        for (auto b : workloads::allBenchmarks())
            if (!std::strcmp(argv[1], workloads::benchName(b)))
                bench = b;
    }
    workloads::WorkloadParams p;
    p.numThreads = 8;
    p.opsPerThread =
        (argc > 2 && std::atol(argv[2]) > 0)
            ? static_cast<std::uint64_t>(std::atol(argv[2]))
            : 200;

    std::printf("Benchmark: %s (8 cores, %llu FASEs/thread)\n\n",
                workloads::benchName(bench),
                static_cast<unsigned long long>(p.opsPerThread));

    // The programming models: what the "compiler/library" inserted.
    auto logical = workloads::generateTraces(bench, p);
    std::printf("%-10s %9s %9s %9s %9s %9s %9s\n", "design", "stores",
                "clwb", "sfence", "ofence", "dfence", "spec-bar");
    for (Design d : {Design::IntelX86, Design::DPO, Design::HOPS,
                     Design::PmemSpec}) {
        auto mix =
            persistency::instrMix(persistency::lower(logical[0], d));
        std::printf("%-10s %9zu %9zu %9zu %9zu %9zu %9zu\n",
                    persistency::designName(d).c_str(), mix.stores,
                    mix.clwbs, mix.sfences, mix.ofences, mix.dfences,
                    mix.specBarriers);
    }

    // The throughput those models produce.
    auto row =
        core::runNormalized(bench, core::defaultMachineConfig(8), p);
    std::printf("\nThroughput normalised to IntelX86:\n");
    for (Design d : row.designs) {
        std::printf("  %-10s %6.3f\n",
                    persistency::designName(d).c_str(),
                    row.normalized.at(d));
    }
    std::printf("\nStrict persistency with speculation (PMEM-Spec) "
                "needs one ordering instruction per FASE and still "
                "tops the relaxed models -- the paper's thesis.\n");
    return 0;
}
