/**
 * @file
 * The chaos harness: systematic fault injection against every
 * persistent data structure in the repo.
 *
 *   1. Exhaustive crash-point exploration -- each structure runs a
 *      scripted workload while the explorer cuts power at *every*
 *      durable persist prefix of every operation, replays recovery
 *      and checks all-or-nothing visibility, structure invariants
 *      and volatile/persisted image convergence;
 *   2. Torn-write exploration -- the same crash points re-run with
 *      torn frontier persists (word subsets of the interrupted
 *      store made durable); the oracle is *no silent corruption*:
 *      recovery restores the pre-operation state or refuses with an
 *      explicit UnrecoverableCorruption report;
 *   3. Injected misspeculations -- load-stale and store-WAW faults
 *      are fired through the real speculation-buffer automaton and
 *      delivered over the genuine OS trap path, under both the Lazy
 *      and the Eager recovery policy;
 *   4. Media-fault fail-safe demos -- bit rot in a counted undo-log
 *      entry must escalate, poisoned log words must be quarantined;
 *   5. A seeded randomised media-fault fuzz: random crash prefixes,
 *      torn masks, bit flips and poison against a logged update,
 *      checking all-or-nothing-or-explicit-refusal every round.
 *
 * Exits non-zero if any oracle fails, so it can serve as a CI gate.
 * The fuzz seed is printed on every failure so any run reproduces:
 *
 *   $ ./chaos [--seed N] [--ops N] [--trace-out P]
 *   $ ./chaos --duration N     # open-loop service soak (N sim ms)
 *
 * With --duration, chaos switches to *open-loop mode*: instead of
 * the scripted stages it stands up the sharded always-on service
 * (src/service) and lets open-loop zipfian clients hammer it for N
 * simulated milliseconds while the default chaos script injects a
 * power cut, media poison, a misspeculation storm and log poison
 * into individual shards. The oracles are the service SLOs: zero
 * consistency violations and full availability on every unaffected
 * shard.
 *
 * With --trace-out, the injected-misspeculation stage records every
 * automaton transition and spec-ID order check into per-demo binary
 * trace logs (P gets a per-demo label inserted), ready for the
 * offline trace checker: `trace_check chaos.*.bin` must report zero
 * disagreements between the hardware detector and the re-derived
 * verdicts.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/trace.hh"
#include "faultinject/crash_explorer.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "faultinject/pmds_workloads.hh"
#include "observe/trace_export.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"
#include "service/service.hh"

using namespace pmemspec;

namespace
{

std::uint64_t activeSeed = 2026;

/** --trace-out destination for the misspec demos ("" disables). */
std::string traceOut;

/** Announce the reproduction recipe; call on every oracle failure. */
void
printRepro(const char *stage)
{
    std::printf("        REPRO: stage '%s' failed under "
                "--seed %llu (rerun: ./chaos --seed %llu)\n",
                stage, static_cast<unsigned long long>(activeSeed),
                static_cast<unsigned long long>(activeSeed));
}

/** One injected misspeculation end-to-end under a given policy.
 *  @return true if the runtime recovered and committed. */
bool
demoMisspec(runtime::RecoveryPolicy policy, faultinject::FaultKind kind,
            const char *what)
{
    runtime::PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1, policy);
    faultinject::FaultInjector inj(pm, os);
    // Checker-grade event capture of the campaign when requested.
    std::unique_ptr<trace::Manager> mgr;
    if (!traceOut.empty()) {
        trace::Config tcfg;
        tcfg.flags = trace::FlagSpecBuffer | trace::FlagPmController |
                     trace::FlagFaultInject;
        tcfg.outPath = traceOut;
        tcfg.label = std::string(what) + "-" +
                     (policy == runtime::RecoveryPolicy::Lazy
                          ? "lazy" : "eager");
        mgr = std::make_unique<trace::Manager>(tcfg, 0);
        inj.setTraceManager(mgr.get());
    }
    const Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 1);
    pm.persistAll();
    inj.attach();
    inj.addPlan(std::make_unique<faultinject::AddrTouchPlan>(kind, cell));

    rt.runFase(0, [&](runtime::Transaction &tx) {
        tx.writeU64(cell, 2);
    });
    if (mgr)
        observe::exportTraceFile(*mgr);

    const bool ok = rt.fasesAborted() == 1 && rt.fasesCommitted() == 1 &&
                    os.delivered() == 1 && pm.readU64(cell) == 2;
    std::printf("[misspec] %-11s under %-5s: %llu interrupt(s), "
                "%llu abort(s), re-executed to commit: %s\n",
                what,
                policy == runtime::RecoveryPolicy::Lazy ? "Lazy" : "Eager",
                static_cast<unsigned long long>(inj.interruptsRaised()),
                static_cast<unsigned long long>(rt.fasesAborted()),
                ok ? "yes" : "NO");
    return ok;
}

/** Bit rot inside a counted log entry: recovery must refuse with an
 *  explicit report, never replay the rotten pre-image. */
bool
demoBitRotEscalates()
{
    runtime::PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1, runtime::RecoveryPolicy::Lazy,
                            1 << 14);
    faultinject::FaultInjector inj(pm, os);
    const Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 1);
    pm.persistAll();
    inj.attach();

    inj.addPlan(std::make_unique<faultinject::PowerCutPlan>(6));
    bool crashed = false;
    try {
        rt.runFase(0, [&](runtime::Transaction &tx) {
            tx.writeU64(cell, 2);
        });
    } catch (const faultinject::PowerFailure &) {
        crashed = true;
    }
    inj.clearPlans();
    // The entry is counted; rot one payload byte beneath its CRC.
    inj.injectBitFlip(rt.logRegion(0).first + 16 + 32, 0x4);

    bool refused = false;
    try {
        rt.recoverAll();
    } catch (const runtime::UnrecoverableCorruption &e) {
        refused = e.report.entriesDiscardedCorrupt >= 1 &&
                  !e.report.consistent;
    }
    const bool ok = crashed && refused;
    std::printf("[media ] bit rot in a counted log entry: "
                "recovery %s\n",
                ok ? "refused with an explicit corruption report"
                   : "DID NOT refuse (silent corruption!)");
    return ok;
}

/** Poisoned words inside the log region: recovery quarantines
 *  (scrubs) them and still restores the pre-FASE state. */
bool
demoPoisonQuarantine()
{
    runtime::PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1, runtime::RecoveryPolicy::Lazy,
                            1 << 14);
    faultinject::FaultInjector inj(pm, os);
    const Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 1);
    pm.persistAll();
    inj.attach();

    // Poison scratch space past the (empty) log frontier, then run a
    // FASE to completion and recover: the scrub must heal the words.
    inj.injectPoison(rt.logRegion(0).first + 4096);
    rt.runFase(0, [&](runtime::Transaction &tx) {
        tx.writeU64(cell, 2);
    });
    const auto rep = rt.recoverAll();
    const bool ok = rep.consistent &&
                    rep.poisonedWordsQuarantined == 1 &&
                    pm.poisonedWordCount() == 0 &&
                    pm.readU64(cell) == 2;
    std::printf("[media ] poisoned log word: %s\n",
                ok ? "quarantined (scrubbed) during recovery"
                   : "NOT quarantined");
    return ok;
}

/**
 * Seeded randomised media-fault fuzz. Each round runs one logged
 * 4-word update and throws a random subset of the extended failure
 * model at it: a power cut at a random prefix, optionally torn,
 * optionally followed by bit rot or poison in the log region. The
 * oracle is the fail-safe contract: recovery ends in all-old,
 * all-new, or an explicit UnrecoverableCorruption -- anything else
 * is silent corruption.
 */
bool
fuzzMediaFaults(std::uint64_t seed, std::size_t rounds)
{
    Rng rng(seed);
    std::size_t cuts = 0, torn = 0, rotted = 0, poisons = 0,
                refusals = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
        runtime::PersistentMemory pm(1 << 20);
        runtime::VirtualOs os;
        runtime::FaseRuntime rt(pm, os, 1,
                                runtime::RecoveryPolicy::Lazy, 1 << 14);
        faultinject::FaultInjector inj(pm, os);
        const Addr data = pm.alloc(32, 64);
        for (unsigned i = 0; i < 4; ++i)
            pm.writeU64(data + 8 * i, 100 + i);
        pm.persistAll();
        inj.attach();

        // A FASE touching one block: payload + header + 2 tombstones
        // + count + 4 data words + commit = at most ~12 persists.
        const std::size_t k = rng.below(14);
        const bool tear = rng.chance(0.5);
        if (tear) {
            inj.addPlan(std::make_unique<faultinject::TornWritePlan>(
                k, rng.next() | 1));
            ++torn;
        } else {
            inj.addPlan(
                std::make_unique<faultinject::PowerCutPlan>(k));
        }
        bool crashed = false;
        try {
            rt.runFase(0, [&](runtime::Transaction &tx) {
                for (unsigned i = 0; i < 4; ++i)
                    tx.writeU64(data + 8 * i, 200 + i);
            });
        } catch (const faultinject::PowerFailure &) {
            crashed = true;
            ++cuts;
        }
        inj.clearPlans();

        const auto [log_base, log_bytes] = rt.logRegion(0);
        if (crashed && rng.chance(0.3)) {
            inj.injectBitFlip(log_base + 8 * rng.below(log_bytes / 8),
                              rng.next());
            ++rotted;
        }
        if (crashed && rng.chance(0.3)) {
            inj.injectPoison(log_base + 8 * rng.below(log_bytes / 8));
            ++poisons;
        }

        bool refused = false;
        try {
            rt.recoverAll();
        } catch (const runtime::UnrecoverableCorruption &) {
            refused = true;
            ++refusals;
        }
        if (refused)
            continue; // explicit report: the fail-safe contract held

        pm.persistAll();
        const std::uint64_t first = pm.readU64(data);
        bool ok = first == 100 || first == 200;
        for (unsigned i = 0; ok && i < 4; ++i)
            ok = pm.readU64(data + 8 * i) == first + i;
        if (!ok) {
            std::printf("[fuzz  ] round %zu: SILENT CORRUPTION "
                        "(data[0..3] = %llu %llu %llu %llu)\n",
                        round,
                        static_cast<unsigned long long>(pm.readU64(data)),
                        static_cast<unsigned long long>(
                            pm.readU64(data + 8)),
                        static_cast<unsigned long long>(
                            pm.readU64(data + 16)),
                        static_cast<unsigned long long>(
                            pm.readU64(data + 24)));
            printRepro("fuzz");
            return false;
        }
    }
    std::printf("[fuzz  ] %zu rounds (seed %llu): %zu cuts, %zu torn, "
                "%zu bit flips, %zu poisons, %zu explicit refusals, "
                "0 silent corruptions\n",
                rounds, static_cast<unsigned long long>(seed), cuts,
                torn, rotted, poisons, refusals);
    return true;
}

/**
 * Open-loop service soak (--duration): the sharded service under the
 * default chaos script for `sim_ms` simulated milliseconds, once per
 * persistency design. Oracles: zero consistency violations; every
 * shard without an injected fault stays fully available.
 */
bool
soakService(std::uint64_t sim_ms, std::uint64_t seed)
{
    bool all_ok = true;
    for (auto design : persistency::allDesigns()) {
        service::ServiceConfig cfg;
        cfg.seed = seed;
        cfg.design = design;
        cfg.duration = nsToTicks(1e6 * static_cast<double>(sim_ms));
        auto frac = [&](double f) {
            return static_cast<Tick>(
                static_cast<double>(cfg.duration) * f);
        };
        using service::ServiceFault;
        cfg.faults = {
            {frac(0.25), 1, ServiceFault::PowerCut, 0, 0},
            {frac(0.40), 2, ServiceFault::MediaPoison, 0, 0},
            {frac(0.55), 0, ServiceFault::MisspecStorm, 0, 0},
            {frac(0.70), 3, ServiceFault::LogPoison, 0, 0},
        };

        service::Service svc(cfg);
        const service::ServiceResult res = svc.run();

        bool ok = res.oracle.violations == 0;
        for (std::size_t s = 0; s < res.shards.size(); ++s) {
            const bool faulted = std::any_of(
                res.faults.begin(), res.faults.end(),
                [&](const service::FaultOutcome &f) {
                    return f.shard == s && f.outcome != "skipped";
                });
            if (!faulted && res.shards[s].availability() < 0.99)
                ok = false;
        }
        std::printf(
            "[soak  ] %-9s: %llu ops, avail %.4f, p99 %llu ns, "
            "%llu recoveries, %llu violation(s): %s\n",
            persistency::designName(design).c_str(),
            static_cast<unsigned long long>(res.offered),
            res.availability(),
            static_cast<unsigned long long>(
                res.latencyQuantile(0.99) / ticksPerNs),
            static_cast<unsigned long long>(
                res.powerFailures + res.mediaErrors +
                res.budgetTrips),
            static_cast<unsigned long long>(res.oracle.violations),
            ok ? "SLOs held" : "SLO FAILURE");
        if (!ok) {
            for (const auto &d : res.oracle.details)
                std::printf("        ORACLE: %s\n", d.c_str());
            for (const auto &t : res.transitions)
                std::printf("        FLIGHT: %s\n", t.c_str());
            printRepro("service soak");
        }
        all_ok = all_ok && ok;
    }
    return all_ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t fuzz_rounds = 200;
    std::uint64_t soak_ms = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0)
                return nullptr;
            if (arg.size() > n && arg[n] == '=')
                return arg.c_str() + n + 1;
            if (arg.size() == n && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (const char *v = value("--seed")) {
            activeSeed = std::strtoull(v, nullptr, 0);
        } else if (const char *v = value("--ops")) {
            fuzz_rounds = std::strtoull(v, nullptr, 0);
        } else if (const char *v = value("--trace-out")) {
            traceOut = v;
        } else if (const char *v = value("--duration")) {
            soak_ms = std::strtoull(v, nullptr, 0);
            if (soak_ms == 0) {
                std::fprintf(stderr,
                             "%s: --duration wants simulated "
                             "milliseconds > 0\n", argv[0]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--seed N] [--ops N] "
                         "[--trace-out P] [--duration SIM_MS]\n",
                         argv[0]);
            return 2;
        }
    }

    // Open-loop mode: the service soak replaces the scripted stages.
    if (soak_ms) {
        std::printf("== open-loop service soak (%llu sim ms) ==\n",
                    static_cast<unsigned long long>(soak_ms));
        const bool ok = soakService(soak_ms, activeSeed);
        std::printf("chaos soak: %s\n",
                    ok ? "all SLOs held" : "SLO FAILURES");
        return ok ? 0 : 1;
    }

    bool all_ok = true;

    // ------------------------------------------------------------
    // 1. Exhaustive crash-point exploration (clean prefixes).
    // ------------------------------------------------------------
    std::printf("== crash-point exploration ==\n");
    for (const auto &wl : faultinject::makeStandardWorkloads()) {
        const auto res = faultinject::exploreCrashPoints(*wl);
        std::printf("[crash] %-10s: %zu ops, %zu crash points, "
                    "%zu failure(s)\n",
                    res.workload.c_str(), res.ops, res.crashPoints,
                    res.failures);
        for (const auto &m : res.messages)
            std::printf("        FAIL: %s\n", m.c_str());
        if (!res.passed())
            printRepro("crash-point exploration");
        all_ok = all_ok && res.passed();
    }

    // ------------------------------------------------------------
    // 2. Torn-write exploration (corrupted frontiers).
    // ------------------------------------------------------------
    std::printf("== torn-write exploration ==\n");
    faultinject::ExploreOptions torn_opts;
    torn_opts.tornWrites = true;
    for (const auto &wl : faultinject::makeStandardWorkloads()) {
        const auto res = faultinject::exploreCrashPoints(*wl, torn_opts);
        std::printf("[torn ] %-10s: %zu torn trials, %zu explicit "
                    "corruption report(s), %zu failure(s)\n",
                    res.workload.c_str(), res.tornTrials,
                    res.corruptionReported, res.failures);
        for (const auto &m : res.messages)
            std::printf("        FAIL: %s\n", m.c_str());
        if (!res.passed())
            printRepro("torn-write exploration");
        all_ok = all_ok && res.passed();
    }

    // ------------------------------------------------------------
    // 3. Injected misspeculations through the real trap path.
    // ------------------------------------------------------------
    std::printf("== injected misspeculation ==\n");
    using faultinject::FaultKind;
    using runtime::RecoveryPolicy;
    for (auto policy : {RecoveryPolicy::Lazy, RecoveryPolicy::Eager}) {
        all_ok &= demoMisspec(policy, FaultKind::LoadStale, "load-stale");
        all_ok &= demoMisspec(policy, FaultKind::StoreWaw, "store-WAW");
    }

    // ------------------------------------------------------------
    // 4. Media-fault fail-safe demos.
    // ------------------------------------------------------------
    std::printf("== media faults ==\n");
    if (!demoBitRotEscalates()) {
        printRepro("bit-rot escalation");
        all_ok = false;
    }
    if (!demoPoisonQuarantine()) {
        printRepro("poison quarantine");
        all_ok = false;
    }

    // ------------------------------------------------------------
    // 5. Seeded randomised media-fault fuzz.
    // ------------------------------------------------------------
    std::printf("== media-fault fuzz ==\n");
    all_ok &= fuzzMediaFaults(activeSeed, fuzz_rounds);

    std::printf("chaos harness: %s\n", all_ok ? "all oracles held"
                                              : "ORACLE FAILURES");
    if (!all_ok)
        printRepro("summary");
    return all_ok ? 0 : 1;
}
