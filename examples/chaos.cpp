/**
 * @file
 * The chaos harness: systematic fault injection against every
 * persistent data structure in the repo.
 *
 *   1. Exhaustive crash-point exploration -- each structure runs a
 *      scripted workload while the explorer cuts power at *every*
 *      durable persist prefix of every operation, replays recovery
 *      and checks all-or-nothing visibility, structure invariants
 *      and volatile/persisted image convergence;
 *   2. Injected misspeculations -- load-stale and store-WAW faults
 *      are fired through the real speculation-buffer automaton and
 *      delivered over the genuine OS trap path, under both the Lazy
 *      and the Eager recovery policy.
 *
 * Exits non-zero if any oracle fails, so it can serve as a CI gate:
 *
 *   $ ./chaos
 */

#include <cstdio>
#include <memory>

#include "faultinject/crash_explorer.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "faultinject/pmds_workloads.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;

namespace
{

/** One injected misspeculation end-to-end under a given policy.
 *  @return true if the runtime recovered and committed. */
bool
demoMisspec(runtime::RecoveryPolicy policy, faultinject::FaultKind kind,
            const char *what)
{
    runtime::PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1, policy);
    faultinject::FaultInjector inj(pm, os);
    const Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 1);
    pm.persistAll();
    inj.attach();
    inj.addPlan(std::make_unique<faultinject::AddrTouchPlan>(kind, cell));

    rt.runFase(0, [&](runtime::Transaction &tx) {
        tx.writeU64(cell, 2);
    });

    const bool ok = rt.fasesAborted() == 1 && rt.fasesCommitted() == 1 &&
                    os.delivered() == 1 && pm.readU64(cell) == 2;
    std::printf("[misspec] %-11s under %-5s: %llu interrupt(s), "
                "%llu abort(s), re-executed to commit: %s\n",
                what,
                policy == runtime::RecoveryPolicy::Lazy ? "Lazy" : "Eager",
                static_cast<unsigned long long>(inj.interruptsRaised()),
                static_cast<unsigned long long>(rt.fasesAborted()),
                ok ? "yes" : "NO");
    return ok;
}

} // namespace

int
main()
{
    bool all_ok = true;

    // ------------------------------------------------------------
    // 1. Exhaustive crash-point exploration.
    // ------------------------------------------------------------
    std::printf("== crash-point exploration ==\n");
    for (const auto &wl : faultinject::makeStandardWorkloads()) {
        const auto res = faultinject::exploreCrashPoints(*wl);
        std::printf("[crash] %-10s: %zu ops, %zu crash points, "
                    "%zu failure(s)\n",
                    res.workload.c_str(), res.ops, res.crashPoints,
                    res.failures);
        for (const auto &m : res.messages)
            std::printf("        FAIL: %s\n", m.c_str());
        all_ok = all_ok && res.passed();
    }

    // ------------------------------------------------------------
    // 2. Injected misspeculations through the real trap path.
    // ------------------------------------------------------------
    std::printf("== injected misspeculation ==\n");
    using faultinject::FaultKind;
    using runtime::RecoveryPolicy;
    for (auto policy : {RecoveryPolicy::Lazy, RecoveryPolicy::Eager}) {
        all_ok &= demoMisspec(policy, FaultKind::LoadStale, "load-stale");
        all_ok &= demoMisspec(policy, FaultKind::StoreWaw, "store-WAW");
    }

    std::printf("chaos harness: %s\n", all_ok ? "all oracles held"
                                              : "ORACLE FAILURES");
    return all_ok ? 0 : 1;
}
