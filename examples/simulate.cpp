/**
 * @file
 * simulate: a command-line driver over the experiment API — run
 * any Table 4 benchmark on any design with custom machine knobs and
 * dump the full statistics tree.
 *
 *   $ ./simulate --bench TPCC --design PMEM-Spec --cores 8 \
 *                    --ops 500 --path-ns 40 --spec-entries 8 --stats
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/experiment.hh"
#include "persistency/lowering.hh"

namespace
{

using namespace pmemspec;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --bench NAME      ArraySwaps|Queue|Hashmap|RB-Tree|TATP|"
        "TPCC|Vacation|Memcached (default TPCC)\n"
        "  --design NAME     IntelX86|DPO|HOPS|PMEM-Spec "
        "(default PMEM-Spec)\n"
        "  --cores N         threads/cores (default 8)\n"
        "  --ops N           FASEs per thread (default 400)\n"
        "  --path-ns N       persist-path latency in ns (default 20)\n"
        "  --spec-entries N  speculation buffer entries (default 4)\n"
        "  --pmcs N          PM controllers (default 1)\n"
        "  --unordered-noc   multi-PMC NoC does not preserve order\n"
        "  --seed N          workload RNG seed (default 1)\n"
        "  --stats           dump the full statistics tree\n"
        "  --config          print the Table 3 configuration\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using persistency::Design;

    workloads::BenchId bench = workloads::BenchId::Tpcc;
    Design design = Design::PmemSpec;
    unsigned cores = 8;
    std::uint64_t ops = 400;
    std::uint64_t seed = 1;
    unsigned path_ns = 20;
    unsigned spec_entries = 4;
    unsigned pmcs = 1;
    bool ordered_noc = true;
    bool dump_stats = false;
    bool show_config = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--bench")) {
            const char *name = next("--bench");
            bool found = false;
            for (auto b : workloads::allBenchmarks()) {
                if (!std::strcmp(name, workloads::benchName(b))) {
                    bench = b;
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown benchmark '%s'\n", name);
                return 1;
            }
        } else if (!std::strcmp(argv[i], "--design")) {
            const char *name = next("--design");
            bool found = false;
            for (Design d : {Design::IntelX86, Design::DPO,
                             Design::HOPS, Design::PmemSpec}) {
                if (persistency::designName(d) == name) {
                    design = d;
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown design '%s'\n", name);
                return 1;
            }
        } else if (!std::strcmp(argv[i], "--cores")) {
            cores = static_cast<unsigned>(std::atoi(next("--cores")));
        } else if (!std::strcmp(argv[i], "--ops")) {
            ops = static_cast<std::uint64_t>(std::atol(next("--ops")));
        } else if (!std::strcmp(argv[i], "--seed")) {
            seed =
                static_cast<std::uint64_t>(std::atol(next("--seed")));
        } else if (!std::strcmp(argv[i], "--path-ns")) {
            path_ns =
                static_cast<unsigned>(std::atoi(next("--path-ns")));
        } else if (!std::strcmp(argv[i], "--spec-entries")) {
            spec_entries = static_cast<unsigned>(
                std::atoi(next("--spec-entries")));
        } else if (!std::strcmp(argv[i], "--pmcs")) {
            pmcs = static_cast<unsigned>(std::atoi(next("--pmcs")));
        } else if (!std::strcmp(argv[i], "--unordered-noc")) {
            ordered_noc = false;
        } else if (!std::strcmp(argv[i], "--stats")) {
            dump_stats = true;
        } else if (!std::strcmp(argv[i], "--config")) {
            show_config = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv[0]);
            return 1;
        }
    }

    cpu::MachineConfig mc = core::defaultMachineConfig(cores);
    mc.design = design;
    mc.mem.persistPathLatency = nsToTicks(path_ns);
    mc.mem.specBufferEntries = spec_entries;
    mc.mem.numPmcs = pmcs;
    mc.mem.orderedNoc = ordered_noc;
    if (design == persistency::Design::HOPS)
        mc.mem.l1ToLlcExtra = nsToTicks(1.0);

    if (show_config) {
        core::printConfig(std::cout, mc);
        std::printf("\n");
    }

    workloads::WorkloadParams p;
    p.numThreads = cores;
    p.opsPerThread = ops;
    p.seed = seed;

    std::printf("running %s on %s (%u cores, %llu FASEs/thread)...\n",
                workloads::benchName(bench),
                persistency::designName(design).c_str(), cores,
                static_cast<unsigned long long>(ops));
    auto logical = workloads::generateTraces(bench, p);
    std::vector<cpu::Trace> traces;
    for (const auto &lt : logical)
        traces.push_back(persistency::lower(lt, design));
    cpu::Machine m(mc);
    m.setTraces(std::move(traces));
    auto r = m.run();

    std::printf("  simulated time       %.2f us\n",
                static_cast<double>(r.simTicks) / 1e6);
    std::printf("  committed FASEs      %llu\n",
                static_cast<unsigned long long>(r.fases));
    std::printf("  throughput           %.3e FASEs/s\n",
                r.throughput());
    std::printf("  instructions         %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  aborts               %llu\n",
                static_cast<unsigned long long>(r.aborts));
    if (design == persistency::Design::PmemSpec) {
        std::printf("  load misspecs        %llu\n",
                    static_cast<unsigned long long>(r.loadMisspecs));
        std::printf("  store misspecs       %llu\n",
                    static_cast<unsigned long long>(r.storeMisspecs));
        std::printf("  spec-buffer pauses   %llu\n",
                    static_cast<unsigned long long>(
                        r.specBufFullPauses));
        if (pmcs > 1) {
            std::printf("  cross-PMC hazards    %llu%s\n",
                        static_cast<unsigned long long>(
                            r.crossPmcReorderHazards),
                        ordered_noc ? "" : "  (unordered NoC)");
        }
    }
    if (dump_stats) {
        std::printf("\n--- statistics tree ---\n");
        m.stats().dump(std::cout);
    }
    return 0;
}
