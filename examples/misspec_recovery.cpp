/**
 * @file
 * The full misspeculation pipeline, end to end:
 *
 *   1. hardware detection -- the synthetic stale-read kernel of
 *      Section 8.4 on a machine with a pathologically slow persist
 *      path trips the speculation buffer's automaton;
 *   2. OS relay -- the virtual OS resolves the faulting physical
 *      address to the owning process through its reverse map;
 *   3. runtime recovery -- the failure-atomic runtime treats the
 *      event as a virtual power failure, aborts the in-flight FASE,
 *      restores old data from the undo log and re-executes.
 *
 *   $ ./misspec_recovery
 */

#include <cstdio>

#include "cpu/machine.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

int
main()
{
    using namespace pmemspec;

    // ------------------------------------------------------------
    // 1. Hardware detection (timing layer).
    // ------------------------------------------------------------
    cpu::MachineConfig cfg;
    cfg.design = persistency::Design::PmemSpec;
    cfg.mem.numCores = 1;
    cfg.mem.l1Bytes = 1024;
    cfg.mem.l1Ways = 1;
    cfg.mem.llcBytes = 4096;
    cfg.mem.llcWays = 1;
    cfg.mem.persistPathLatency = nsToTicks(2000); // 100x slower
    cfg.mem.speculationWindow = nsToTicks(8000);

    cpu::Trace kernel;
    const Addr stride = 64 * blockBytes;
    const Addr victim = 50 * stride;
    kernel.push_back({cpu::TraceOp::Store, victim});
    for (unsigned i = 1; i <= 5; ++i)
        kernel.push_back({cpu::TraceOp::Store, i * stride});
    kernel.push_back({cpu::TraceOp::Compute, 3000});
    kernel.push_back({cpu::TraceOp::LoadDep, victim});

    cpu::Machine machine(cfg);
    std::vector<cpu::Trace> traces{kernel};
    machine.setTraces(std::move(traces));
    auto r = machine.run();
    std::printf("[hw] synthetic kernel: %llu load misspeculation(s) "
                "detected by the speculation buffer\n",
                static_cast<unsigned long long>(r.loadMisspecs));

    // ------------------------------------------------------------
    // 2 + 3. OS relay and runtime recovery (functional layer).
    // ------------------------------------------------------------
    runtime::PersistentMemory pm(1 << 20);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1,
                            runtime::RecoveryPolicy::Lazy);
    const Addr cell = pm.alloc(8, 64);
    pm.writeU64(cell, 7);
    pm.persistAll();

    int attempts = 0;
    rt.runFase(0, [&](runtime::Transaction &tx) {
        ++attempts;
        tx.writeU64(cell, 999); // speculative update
        if (attempts == 1) {
            // The hardware stores the faulting address in the OS
            // mailbox and raises the interrupt; the OS finds the
            // owning process through the reverse map.
            auto pid = os.raiseMisspecInterrupt(cell);
            std::printf("[os] misspec interrupt at %#llx relayed to "
                        "pid %u (mailbox %#llx)\n",
                        static_cast<unsigned long long>(cell),
                        pid ? *pid : 0u,
                        static_cast<unsigned long long>(os.mailbox()));
        }
    });
    std::printf("[rt] FASE aborted %llu time(s), re-executed, and "
                "committed; cell = %llu\n",
                static_cast<unsigned long long>(rt.fasesAborted()),
                static_cast<unsigned long long>(pm.readU64(cell)));
    std::printf("\nMisspeculation is handled exactly like a power "
                "failure -- no wrong data ever commits.\n");
    return (r.loadMisspecs >= 1 && rt.fasesAborted() == 1 &&
            pm.readU64(cell) == 999)
               ? 0
               : 1;
}
